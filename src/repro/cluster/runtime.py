"""The sharded (multi-node) CoSPARSE runtime.

:class:`ShardedRuntime` splits a square operand into K contiguous row
shards (:mod:`repro.cluster.partition`), owns one co-reconfiguring
:class:`~repro.core.runtime.CoSparseRuntime` per shard — each making its
*own* per-invocation IP/OP and hardware-mode decision against its own
sub-matrix — and runs the unmodified graph drivers (BFS / SSSP /
PageRank) distributed: every iteration the active frontier non-zeros
are exchanged through a modeled interconnect
(:mod:`repro.cluster.topology`) before the shard kernels run.

Two execution paths produce bit-identical results:

* **serial** (``jobs=1`` or a single shard) — shard runtimes live in
  this process and run back-to-back;
* **pooled** — shard steps fan out through a
  :class:`~repro.parallel.scheduler.SweepScheduler` session: matrix
  shards are published to shared memory once per run (the session arena
  memoises publishes), workers keep per-shard runtime memos, and the
  coordinator remains the single source of truth for each shard's
  mutable decision state (last config + the stateful hardware mode), so
  results cannot depend on task-to-worker placement.

The cycle model folds the interconnect in: a cluster iteration costs
``max(shard compute) + network``, giving every run a
network-vs-compute breakdown (`ClusterLog.total_network_cycles` /
``total_compute_cycles``).  Functionally, the merge is a plain
shard-order concatenation — contiguous row shards keep every row's
reduction (and its contribution order) inside one shard, so distributed
values/touched are bit-identical to single-node in original vertex ids.

Pooled runtimes hold a process pool and shared-memory segments: use the
runtime as a context manager (or call :meth:`close`) so they are
released deterministically.
"""

from __future__ import annotations

import itertools
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..core.reconfig import IterationRecord
from ..core.runtime import CoSparseRuntime, SpMVOperand
from ..errors import ConfigurationError
from ..formats import COOMatrix, DenseVector, SparseVector
from ..graphs.common import DEFAULT_GEOMETRY
from ..hardware import Geometry, HWMode
from ..hardware.params import DEFAULT_PARAMS, HardwareParams
from ..obs.events import ClusterExchangeEvent, ShardDecisionEvent
from ..obs.tracer import active as _obs_active
from ..parallel import PricingTask, SweepScheduler
from ..parallel.scheduler import resolve_jobs
from ..parallel.work import coo_arrays, csc_arrays
from ..perf import counters as _perf
from ..perf import timed
from ..spmv import SpMVResult
from ..spmv.semiring import Semiring
from .partition import build_shards, shard_bounds
from .topology import ENTRY_BYTES, ExchangeReport, LinkParams, topology_for
from .work import SHARD_FN

__all__ = ["ShardedRuntime", "ClusterLog", "ClusterIterationRecord"]

#: Policies a sharded run supports.  ``adaptive`` is excluded: it
#: mutates decision thresholds online per runtime, so K independent
#: shard trees would drift from the single-node trajectory.
_POLICIES = ("tree", "oracle", "static")

#: Per-process run tokens keying the worker-side shard-runtime memos.
_token_counter = itertools.count()


@dataclass
class ClusterIterationRecord:
    """One distributed SpMV invocation: K shard records + the exchange.

    Shards run concurrently in model time, so the iteration's compute
    cost is the *slowest* shard's cycles; the exchange (when charged —
    the seed frontier is node-local and free) is serialized before the
    kernels and adds its cycles on top.
    """

    iteration: int
    vector_density: float
    shard_records: List[IterationRecord] = field(default_factory=list)
    network_cycles: float = 0.0
    exchange: Optional[ExchangeReport] = None

    @property
    def compute_cycles(self) -> float:
        """The slowest shard's kernel + conversion cycles."""
        return max((r.total_cycles for r in self.shard_records), default=0.0)

    @property
    def total_cycles(self) -> float:
        return self.compute_cycles + self.network_cycles

    @property
    def config_label(self) -> str:
        """Distinct per-shard configs in shard order (``IP/SC|OP/PC``)."""
        return "|".join(
            dict.fromkeys(r.config_label for r in self.shard_records)
        )

    @property
    def sw_switched(self) -> bool:
        return any(r.sw_switched for r in self.shard_records)

    @property
    def hw_switched(self) -> bool:
        return any(r.hw_switched for r in self.shard_records)


@dataclass
class ClusterLog:
    """Execution history of one distributed algorithm run.

    Duck-types :class:`~repro.core.reconfig.ReconfigurationLog` (the
    drivers' :class:`~repro.graphs.common.AlgorithmRun` consumes either)
    and adds the network-vs-compute breakdown.
    """

    records: List[ClusterIterationRecord] = field(default_factory=list)
    clock_hz: float = DEFAULT_PARAMS.clock_hz

    def append(self, record: ClusterIterationRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    @property
    def total_cycles(self) -> float:
        """Whole-run cycles: per-iteration max-shard compute + network."""
        return sum(r.total_cycles for r in self.records)

    @property
    def total_compute_cycles(self) -> float:
        return sum(r.compute_cycles for r in self.records)

    @property
    def total_network_cycles(self) -> float:
        return sum(r.network_cycles for r in self.records)

    @property
    def total_bytes(self) -> int:
        """Whole-run interconnect traffic in bytes."""
        return sum(
            r.exchange.total_bytes for r in self.records if r.exchange
        )

    @property
    def total_energy_j(self) -> Optional[float]:
        """Summed shard energies (None when no record carries energy)."""
        energies = [
            s.report.energy_j for r in self.records for s in r.shard_records
        ]
        if not energies or all(e is None for e in energies):
            return None
        return sum(e or 0.0 for e in energies)

    @property
    def sw_switches(self) -> int:
        """Iterations in which any shard switched software."""
        return sum(1 for r in self.records if r.sw_switched)

    @property
    def hw_switches(self) -> int:
        """Iterations in which any shard switched hardware mode."""
        return sum(1 for r in self.records if r.hw_switched)

    def config_sequence(self) -> List[str]:
        return [r.config_label for r in self.records]

    def density_sequence(self) -> List[float]:
        return [r.vector_density for r in self.records]

    def summary(self) -> str:
        """Multi-line digest with the network/compute split."""
        lines = [
            f"{len(self.records)} iterations, "
            f"{self.total_cycles:,.0f} cycles "
            f"({self.total_network_cycles:,.0f} network), "
            f"{self.total_bytes:,d} bytes exchanged"
        ]
        for r in self.records:
            lines.append(
                f"  iter {r.iteration:3d}: d_v={r.vector_density:8.4%}  "
                f"{r.config_label:16s}  {r.compute_cycles:12,.0f} compute "
                f"+ {r.network_cycles:10,.0f} net"
            )
        return "\n".join(lines)


class ShardedRuntime:
    """Drives distributed SpMV iterations over K row shards.

    Parameters
    ----------
    matrix:
        The square adjacency operand (:class:`SpMVOperand`,
        :class:`COOMatrix`, or anything scipy-like).
    nodes:
        Shard / node count K (``1 <= K <= n_rows``).  ``K=1`` degrades
        to exactly one single-node runtime (and charges no network).
    geometry:
        Per-node hardware shape (every node runs the same geometry).
    topology:
        ``"mesh"`` (full mesh) or ``"star"`` (switched star).
    partition:
        ``"nnz"`` (equal-nnz rows) or ``"commvol"`` (equal-nnz refined
        to cut fewer columns — less exchange traffic).
    link:
        :class:`~repro.cluster.topology.LinkParams` override.
    jobs:
        Host worker processes for the shard fan-out (default: the
        ``REPRO_JOBS``/cpu-count resolution).  ``jobs=1`` keeps every
        shard runtime in-process; results are bit-identical either way.
    policy / static_config / balanced / objective / params:
        Forwarded to every shard's :class:`CoSparseRuntime`.
        ``adaptive`` is rejected (online threshold mutation diverges
        from single-node), as is trace fidelity.
    """

    def __init__(
        self,
        matrix,
        nodes: int,
        geometry: Union[Geometry, str] = DEFAULT_GEOMETRY,
        params: HardwareParams = DEFAULT_PARAMS,
        policy: str = "tree",
        static_config: Tuple[str, HWMode] = ("ip", HWMode.SC),
        balanced: bool = True,
        objective: str = "time",
        topology: str = "mesh",
        partition: str = "nnz",
        link: Optional[LinkParams] = None,
        jobs: Optional[int] = None,
    ):
        if policy not in _POLICIES:
            raise ConfigurationError(
                f"sharded policy must be one of {_POLICIES} (adaptive "
                "mutates thresholds online and would drift from the "
                "single-node trajectory)"
            )
        if isinstance(matrix, SpMVOperand):
            coo = matrix.coo
        elif isinstance(matrix, COOMatrix):
            coo = matrix
        else:
            coo = COOMatrix.from_scipy(matrix)
        if coo.n_rows != coo.n_cols:
            raise ConfigurationError(
                "the sharded runtime shards the vertex space by row "
                f"ownership and needs a square operand, got "
                f"{coo.n_rows}x{coo.n_cols}"
            )
        nodes = int(nodes)
        if not 1 <= nodes <= max(coo.n_rows, 1):
            raise ConfigurationError(
                f"nodes must be in [1, {coo.n_rows}], got {nodes}"
            )
        self.geometry = (
            Geometry.parse(geometry) if isinstance(geometry, str) else geometry
        )
        self.params = params
        self.policy = policy
        self.static_config = static_config
        self.balanced = balanced
        self.objective = objective
        self.nodes = nodes
        self.partition = partition
        self.n = coo.n_rows
        self.bounds = shard_bounds(coo, nodes, partition)
        self.shards = build_shards(coo, self.bounds)
        self.topology = topology_for(topology, nodes, link)
        self.log = ClusterLog(clock_hz=params.clock_hz)
        self.jobs = resolve_jobs(jobs)
        self._iteration = 0
        self._announced = None
        self._token = f"shard-run-{next(_token_counter)}"
        self._runtimes: Optional[List[CoSparseRuntime]] = None
        self._scheduler: Optional[SweepScheduler] = None
        if self.jobs > 1 and nodes > 1:
            self._scheduler = SweepScheduler(
                jobs=min(self.jobs, nodes), use_cache=False, label="cluster"
            )
            self._params_spec = (
                None if params is DEFAULT_PARAMS else asdict(params)
            )
            #: Coordinator-authoritative per-shard decision state.  The
            #: ``last_*`` pair mirrors the log-scoped fields a
            #: ``reset_log`` clears; ``system_mode`` is the *persistent*
            #: hardware mode, which survives across runs exactly as a
            #: resident single-node system's does.
            self._state: List[Dict[str, Optional[str]]] = [
                {"last_algorithm": None, "last_mode": None,
                 "system_mode": None}
                for _ in range(nodes)
            ]
        else:
            self._runtimes = [
                CoSparseRuntime(
                    SpMVOperand(s.coo, s.csc),
                    self.geometry,
                    params=params,
                    policy=policy,
                    static_config=static_config,
                    balanced=balanced,
                    objective=objective,
                )
                for s in self.shards
            ]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the pooled path's worker pool and shm segments."""
        if self._scheduler is not None:
            self._scheduler.close_session()

    def __enter__(self) -> "ShardedRuntime":
        if self._scheduler is not None:
            self._scheduler.start_session()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def reset_log(self) -> None:
        """Fresh log for a new algorithm run on the same shards.

        Mirrors :meth:`CoSparseRuntime.reset_log`: log-scoped decision
        state resets, the resident hardware mode of every shard
        persists.
        """
        self.log = ClusterLog(clock_hz=self.params.clock_hz)
        self._iteration = 0
        self._announced = None
        if self._runtimes is not None:
            for rt in self._runtimes:
                rt.reset_log()
        else:
            for state in self._state:
                state["last_algorithm"] = None
                state["last_mode"] = None

    # ------------------------------------------------------------------
    # Driver integration
    # ------------------------------------------------------------------
    def on_frontier(self, frontier) -> None:
        """Driver hook (:func:`repro.graphs.common.notify_frontier`).

        Called the moment a new frontier exists — the point a real
        cluster would start broadcasting fresh non-zeros to the shards
        whose columns consume them.  The next :meth:`spmv` charges the
        exchange for exactly this frontier.
        """
        self._announced = frontier

    @property
    def last_record(self) -> Optional[ClusterIterationRecord]:
        return self.log.records[-1] if self.log.records else None

    def describe(self) -> dict:
        """Stable JSON-able summary (mirrors the single-node runtime)."""
        return {
            "nodes": self.nodes,
            "topology": self.topology.name,
            "partition": self.partition,
            "geometry": self.geometry.name,
            "policy": self.policy,
            "objective": self.objective,
            "balanced": self.balanced,
            "static_config": [
                self.static_config[0],
                self.static_config[1].label,
            ],
            "n_vertices": self.n,
            "nnz": sum(s.coo.nnz for s in self.shards),
            "pooled": self._scheduler is not None,
        }

    # ------------------------------------------------------------------
    # The distributed invocation
    # ------------------------------------------------------------------
    def spmv(self, frontier, semiring: Semiring, current=None) -> SpMVResult:
        """One distributed SpMV: exchange, K shard kernels, merge."""
        tracer = _obs_active()
        with tracer.span(
            "cluster.spmv", iteration=self._iteration, nodes=self.nodes
        ) as root:
            density = CoSparseRuntime.frontier_density(frontier, semiring)
            exchange = None
            if self._iteration > 0:
                with tracer.span(
                    "cluster.exchange",
                    iteration=self._iteration,
                    topology=self.topology.name,
                ) as ex_span:
                    exchange = self._exchange(frontier, semiring)
                    ex_span.set(
                        bytes=exchange.total_bytes, cycles=exchange.cycles
                    )
                _perf.cluster_exchange_bytes += exchange.total_bytes
                if tracer.enabled:
                    tracer.event(
                        ClusterExchangeEvent(
                            iteration=self._iteration,
                            topology=self.topology.name,
                            nodes=self.nodes,
                            bytes_total=exchange.total_bytes,
                            max_link_bytes=exchange.max_link_bytes,
                            network_cycles=exchange.cycles,
                        )
                    )
            cur = None if current is None else np.asarray(current)
            with timed("cluster.spmv"):
                if self._runtimes is not None:
                    pieces = self._run_serial(frontier, semiring, cur)
                else:
                    pieces = self._run_pool(frontier, semiring, cur)
            # Shard-order merge: shard p's output IS rows [lo_p, hi_p).
            values = np.concatenate([p[0] for p in pieces])
            touched = np.concatenate([p[1] for p in pieces])
            shard_records = [p[2] for p in pieces]
            record = ClusterIterationRecord(
                iteration=self._iteration,
                vector_density=density,
                shard_records=shard_records,
                network_cycles=exchange.cycles if exchange else 0.0,
                exchange=exchange,
            )
            self.log.append(record)
            _perf.cluster_spmv_calls += 1
            _perf.cluster_shard_tasks += len(shard_records)
            if tracer.enabled:
                root.set(
                    config=record.config_label,
                    vector_density=density,
                    cycles=record.total_cycles,
                    network_cycles=record.network_cycles,
                )
                for shard_idx, r in enumerate(shard_records):
                    tracer.event(
                        ShardDecisionEvent(
                            iteration=self._iteration,
                            shard=shard_idx,
                            algorithm=r.algorithm,
                            hw_mode=r.hw_mode.label,
                            vector_density=r.vector_density,
                            cycles=r.total_cycles,
                        )
                    )
            self._iteration += 1
        return SpMVResult(values, touched, None, semiring)

    def spmv_batch(self, *args, **kw):
        raise ConfigurationError(
            "the sharded runtime does not batch supersteps; run "
            "sequential spmv() per frontier"
        )

    # ------------------------------------------------------------------
    # Exchange modeling
    # ------------------------------------------------------------------
    @staticmethod
    def _active_indices(frontier, semiring: Semiring) -> np.ndarray:
        if isinstance(frontier, SparseVector):
            return np.asarray(frontier.indices, dtype=np.int64)
        arr = (
            frontier.data
            if isinstance(frontier, DenseVector)
            else np.asarray(frontier)
        )
        if arr.ndim == 2:
            return np.nonzero(np.any(arr != semiring.absent, axis=1))[0]
        return np.nonzero(arr != semiring.absent)[0]

    def _exchange(self, frontier, semiring: Semiring) -> ExchangeReport:
        """Price this frontier's owner-to-consumer traffic.

        Every active vertex lives on the shard owning its row; each
        consumer shard ``q`` needs exactly the active vertices its
        column mask references.  ``traffic[p, q]`` counts shard-``p``
        -owned active vertices shard ``q`` consumes; the diagonal
        (node-local data) never touches the wire.
        """
        idx = self._active_indices(frontier, semiring)
        traffic = np.zeros((self.nodes, self.nodes), dtype=np.int64)
        if idx.size:
            for q, shard in enumerate(self.shards):
                need = idx[shard.col_mask[idx]]
                if need.size == 0:
                    continue
                owner = np.searchsorted(self.bounds, need, side="right") - 1
                traffic[:, q] += np.bincount(owner, minlength=self.nodes)
        np.fill_diagonal(traffic, 0)
        return self.topology.exchange(traffic * ENTRY_BYTES)

    # ------------------------------------------------------------------
    # Shard execution: serial and pooled
    # ------------------------------------------------------------------
    def _run_serial(self, frontier, semiring, current):
        pieces = []
        for shard, rt in zip(self.shards, self._runtimes):
            cur = None if current is None else current[shard.lo:shard.hi]
            result = rt.spmv(frontier, semiring, current=cur)
            pieces.append((result.values, result.touched, rt.log.records[-1]))
        return pieces

    def _frontier_shipment(self, frontier):
        """``(payload marker, arrays)`` preserving the representation."""
        if isinstance(frontier, SparseVector):
            return "sparse", {
                "frontier_idx": frontier.indices,
                "frontier_vals": frontier.values,
            }
        arr = (
            frontier.data
            if isinstance(frontier, DenseVector)
            else np.asarray(frontier, dtype=np.float64)
        )
        return "dense", {"frontier_dense": arr}

    def _run_pool(self, frontier, semiring, current):
        if semiring.spec is None:
            raise ConfigurationError(
                f"semiring {semiring.name!r} carries no distributed "
                "reconstruction spec; construct the ShardedRuntime with "
                "jobs=1 to run it serially"
            )
        # Idempotent: keeps one pool + arena across iterations so the
        # matrix shards are published to shared memory exactly once.
        self._scheduler.start_session()
        marker, f_arrays = self._frontier_shipment(frontier)
        sr_arrays = {
            f"sr_{name}": arr
            for name, arr in (semiring.spec_arrays or {}).items()
        }
        tasks = []
        for shard, state in zip(self.shards, self._state):
            payload = {
                "token": self._token,
                "shard": shard.index,
                "shape": [shard.n_rows, self.n],
                "geometry": self.geometry.name,
                "policy": self.policy,
                "static_algorithm": self.static_config[0],
                "static_mode": self.static_config[1].name,
                "balanced": self.balanced,
                "objective": self.objective,
                "params": self._params_spec,
                "semiring": semiring.spec,
                "n": self.n,
                "frontier": marker,
                "state": {"iteration": self._iteration, **state},
            }
            arrays = {
                **coo_arrays(shard.coo),
                **csc_arrays(shard.csc),
                **sr_arrays,
                **f_arrays,
            }
            if current is not None:
                arrays["current"] = current[shard.lo:shard.hi]
            tasks.append(
                PricingTask(SHARD_FN, payload, arrays, cacheable=False)
            )
        results = self._scheduler.map(tasks)
        pieces = []
        for state, res in zip(self._state, results):
            record = res["record"]
            state["last_algorithm"] = record.algorithm
            state["last_mode"] = record.hw_mode.name
            # system.run() always leaves the hardware in the executed
            # mode (probes price without switching), so the persistent
            # mode IS the record's.
            state["system_mode"] = record.hw_mode.name
            pieces.append((res["values"], res["touched"], record))
        return pieces
