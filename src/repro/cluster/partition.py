"""Row-shard construction for the sharded runtime.

A shard owns a contiguous row range ``[lo, hi)`` of the global matrix:
its sub-matrix keeps *global* column ids (the input vector is the full
frontier) while rows are re-indexed locally, so the shard's kernel
output is exactly the global output's ``[lo, hi)`` slice.  Contiguity
is what makes the merged result bit-identical to single-node: every
row's reduction happens entirely inside one shard, in the same stored
entry order both kernels use globally.

Two boundary strategies, both reusing :mod:`repro.spmv.partition`:

* ``"nnz"`` — :func:`~repro.spmv.partition.equal_nnz_row_bounds`, the
  paper's load-balancing split;
* ``"commvol"`` — :func:`~repro.spmv.partition.commvol_row_bounds`,
  the equal-nnz split greedily refined to reduce cut columns (the
  vertices shards must exchange every dense iteration).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..errors import ConfigurationError
from ..formats import COOMatrix, CSCMatrix
from ..spmv.partition import commvol_row_bounds, equal_nnz_row_bounds

__all__ = ["PARTITION_STRATEGIES", "Shard", "shard_bounds", "build_shards"]

PARTITION_STRATEGIES = ("nnz", "commvol")


@dataclass
class Shard:
    """One node's slice of the global operand."""

    index: int
    #: Global row range ``[lo, hi)`` this shard owns.
    lo: int
    hi: int
    #: Locally re-indexed sub-matrix (rows ``- lo``), global column ids.
    coo: COOMatrix
    csc: CSCMatrix
    #: Which global columns this shard's entries reference — the
    #: vertices whose frontier values it must receive when active.
    col_mask: np.ndarray

    @property
    def n_rows(self) -> int:
        return self.hi - self.lo


def shard_bounds(
    coo: COOMatrix, nodes: int, strategy: str = "nnz",
    window: Optional[int] = None,
) -> np.ndarray:
    """Row boundaries (``nodes + 1`` entries) for the chosen strategy."""
    if strategy not in PARTITION_STRATEGIES:
        raise ConfigurationError(
            f"unknown partition strategy {strategy!r}; expected one of "
            f"{PARTITION_STRATEGIES}"
        )
    row_ptr = coo.row_extents()
    if strategy == "commvol":
        return commvol_row_bounds(row_ptr, coo.cols, nodes, window=window)
    return equal_nnz_row_bounds(row_ptr, nodes)


def build_shards(coo: COOMatrix, bounds: np.ndarray) -> List[Shard]:
    """Materialise one :class:`Shard` per bounds interval.

    The global COO is row-major sorted, so slicing its entry stream by
    row range preserves each row's within-row (column-ascending) entry
    order — the order both kernels reduce in, which the bit-identity
    contract rests on.  The CSC copy is built here once per shard and
    handed to the operand pre-built.
    """
    shards: List[Shard] = []
    for p in range(len(bounds) - 1):
        lo, hi = int(bounds[p]), int(bounds[p + 1])
        e0 = int(np.searchsorted(coo.rows, lo, side="left"))
        e1 = int(np.searchsorted(coo.rows, hi, side="left"))
        local = COOMatrix(
            hi - lo,
            coo.n_cols,
            coo.rows[e0:e1] - lo,
            coo.cols[e0:e1],
            coo.vals[e0:e1],
            sort=False,
            check=False,
        )
        mask = np.zeros(coo.n_cols, dtype=bool)
        mask[coo.cols[e0:e1]] = True
        shards.append(
            Shard(
                index=p,
                lo=lo,
                hi=hi,
                coo=local,
                csc=CSCMatrix.from_coo(local),
                col_mask=mask,
            )
        )
    return shards
