"""The sharded runtime's pool task: one shard's SpMV step.

Follows the task contract of :mod:`repro.parallel.work` — ``fn(payload,
arrays) -> dict`` — but is never cached (``cacheable=False``): the
result carries numpy arrays and an :class:`IterationRecord`, which the
scheduler ships back by pickle, not JSON.

Worker-side memo
----------------
Rebuilding a shard's :class:`~repro.core.runtime.CoSparseRuntime` (and
re-sorting nothing — the COO/CSC arrays arrive pre-built through the
shm arena) every iteration would dominate the fan-out, so workers keep
one runtime per ``(run token, shard)`` in :data:`_shard_runtimes`.  The
runtime's *mutable* decision state (last config, the stateful hardware
mode) is never trusted across calls: the coordinator tracks it centrally
and every task payload carries the authoritative snapshot, so results
are bit-identical no matter which worker a task lands on — or whether
it runs on the serial fallback path in the coordinator itself.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..core.runtime import CoSparseRuntime, SpMVOperand
from ..errors import AlgorithmError
from ..formats import COOMatrix, CSCMatrix, SparseVector
from ..hardware import HWMode
from ..hardware.params import DEFAULT_PARAMS, HardwareParams
from ..spmv.semiring import (
    Semiring,
    bfs_semiring,
    pagerank_semiring,
    spmv_semiring,
    sssp_semiring,
)

__all__ = ["SHARD_FN", "shard_step", "semiring_from_spec"]

#: Task-function address for :class:`~repro.parallel.tasks.PricingTask`.
SHARD_FN = "repro.cluster.work:shard_step"

#: (run token, shard index) -> the shard's CoSparseRuntime, per process.
_shard_runtimes: Dict[Tuple[str, int], CoSparseRuntime] = {}


def semiring_from_spec(
    spec: dict, arrays: Dict[str, np.ndarray]
) -> Semiring:
    """Rebuild a driver semiring from its JSON-able ``spec``.

    The recipe arrays (``spec_arrays``) arrive under ``sr_``-prefixed
    task-array names.  Every builder is a pure function of its inputs,
    so the rebuilt semiring computes bit-identical results to the
    coordinator's original.
    """
    kind = spec["kind"]
    if kind == "spmv":
        return spmv_semiring()
    if kind == "bfs":
        return bfs_semiring()
    if kind == "sssp":
        return sssp_semiring()
    if kind == "pagerank":
        return pagerank_semiring(arrays["sr_degrees"], alpha=spec["alpha"])
    if kind == "pagerank_norm":
        # Late import: repro.graphs imports the core runtime; binding at
        # call time keeps the cluster package importable from anywhere.
        from ..graphs.pagerank import pagerank_norm_semiring

        return pagerank_norm_semiring(
            arrays["sr_degrees"], spec["alpha"], int(spec["n"])
        )
    raise AlgorithmError(f"unknown semiring spec kind {kind!r}")


def _runtime_for(
    payload: dict, arrays: Dict[str, np.ndarray]
) -> CoSparseRuntime:
    key = (payload["token"], int(payload["shard"]))
    rt = _shard_runtimes.get(key)
    if rt is not None:
        return rt
    n_rows, n_cols = payload["shape"]
    coo = COOMatrix(
        n_rows,
        n_cols,
        arrays["coo_rows"],
        arrays["coo_cols"],
        arrays["coo_vals"],
        sort=False,
        check=False,
    )
    csc = CSCMatrix(
        n_rows,
        n_cols,
        arrays["csc_indptr"],
        arrays["csc_indices"],
        arrays["csc_vals"],
        check=False,
    )
    params_spec = payload.get("params")
    params = (
        DEFAULT_PARAMS if params_spec is None else HardwareParams(**params_spec)
    )
    rt = CoSparseRuntime(
        SpMVOperand(coo, csc),
        payload["geometry"],
        params=params,
        policy=payload["policy"],
        static_config=(
            payload["static_algorithm"],
            HWMode[payload["static_mode"]],
        ),
        balanced=bool(payload["balanced"]),
        objective=payload["objective"],
    )
    _shard_runtimes[key] = rt
    return rt


def _frontier_from(payload: dict, arrays: Dict[str, np.ndarray]):
    """The frontier in the same representation the coordinator held.

    Representation matters beyond the functional result: the decision
    density and the charged conversion cycles depend on whether the
    frontier arrived sparse or dense, and bit-identity to single-node
    requires matching both.
    """
    if payload["frontier"] == "sparse":
        return SparseVector(
            int(payload["n"]),
            arrays["frontier_idx"],
            arrays["frontier_vals"],
            sort=False,
            check=False,
        )
    return arrays["frontier_dense"]


def shard_step(payload: dict, arrays: Dict[str, np.ndarray]) -> dict:
    """Run one shard's reconfigured SpMV invocation.

    Payload: ``token``/``shard`` (memo key), ``shape`` (local rows ×
    global cols), runtime config (``geometry``, ``policy``,
    ``static_algorithm``/``static_mode``, ``balanced``, ``objective``,
    ``params``), ``semiring`` (spec dict), ``frontier`` ("sparse" or
    "dense") + ``n``, and ``state`` — the coordinator's authoritative
    per-shard snapshot (iteration number, last logged config, the
    persistent hardware mode).  Arrays: the shard matrix in both
    formats, the frontier, the semiring's recipe arrays, and the
    shard's ``current`` slice (carry semirings).

    Returns the shard's values/touched slices plus the single
    :class:`IterationRecord` the invocation logged (pickled back whole
    so the coordinator's cluster log holds real per-shard records).
    """
    rt = _runtime_for(payload, arrays)
    state = payload["state"]
    rt.reset_log()
    rt._iteration = int(state["iteration"])
    rt._last_algorithm = state["last_algorithm"]
    rt._last_mode = (
        None if state["last_mode"] is None else HWMode[state["last_mode"]]
    )
    rt.system.current_mode = (
        None if state["system_mode"] is None else HWMode[state["system_mode"]]
    )
    semiring = semiring_from_spec(payload["semiring"], arrays)
    frontier = _frontier_from(payload, arrays)
    result = rt.spmv(frontier, semiring, current=arrays.get("current"))
    return {
        "values": result.values,
        "touched": result.touched,
        "record": rt.log.records[0],
    }
