"""Modeled cluster interconnects for the sharded runtime.

The distributed extension (ROADMAP item 2) splits the matrix into K row
shards and exchanges frontier non-zeros between shard owners every
iteration.  The interconnect here prices that exchange in *model*
cycles — the same unit the kernel cost model uses — so a sharded run
reports a network-vs-compute cycle breakdown instead of pretending the
exchange is free.

Two topologies:

* :class:`FullMesh` — a dedicated link per ordered node pair.  Every
  message travels concurrently; the exchange takes as long as the
  slowest single message (latency + serialization).
* :class:`SwitchedStar` — every node hangs off one central switch via
  an uplink/downlink pair.  Messages to different peers share the
  sender's uplink (and the receiver's downlink), so the exchange is
  bounded by the most occupied port plus two link traversals.

Both keep cumulative per-link byte counters so a whole run's traffic
can be audited link by link.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "ENTRY_BYTES",
    "LinkParams",
    "ExchangeReport",
    "FullMesh",
    "SwitchedStar",
    "TOPOLOGIES",
    "topology_for",
]

#: Wire bytes per exchanged frontier entry: an 8-byte vertex id plus an
#: 8-byte value (level / distance / rank contribution).
ENTRY_BYTES = 16


@dataclass(frozen=True)
class LinkParams:
    """One point-to-point link of the modeled interconnect.

    The defaults approximate a commodity 100 Gb/s fabric against the
    kernel model's on-chip clock: ~32 bytes per cycle of sustained
    bandwidth and a half-microsecond-class hop latency.
    """

    bandwidth_bytes_per_cycle: float = 32.0
    latency_cycles: float = 500.0


DEFAULT_LINK = LinkParams()


@dataclass
class ExchangeReport:
    """What one frontier exchange moved and cost.

    ``cycles`` is the modeled wall time of the whole exchange (all
    transfers overlap as the topology allows); ``total_bytes`` sums
    every message, ``max_link_bytes`` is the most loaded link's share,
    and ``messages`` counts distinct (src, dst) node pairs that
    exchanged anything.
    """

    cycles: float = 0.0
    total_bytes: int = 0
    max_link_bytes: int = 0
    messages: int = 0


class _Topology:
    """Shared plumbing: link params and cumulative per-link bytes."""

    name = "abstract"

    def __init__(self, nodes: int, link: Optional[LinkParams] = None):
        if nodes < 1:
            raise ConfigurationError("a topology needs at least one node")
        self.nodes = int(nodes)
        self.link = link if link is not None else DEFAULT_LINK
        #: Cumulative bytes per link, keyed by the topology's link ids.
        self.link_bytes: Dict[Tuple, int] = {}

    def _charge(self, key: Tuple, nbytes: int) -> None:
        self.link_bytes[key] = self.link_bytes.get(key, 0) + int(nbytes)

    def exchange(self, traffic_bytes: np.ndarray) -> ExchangeReport:
        """Price one all-to-all exchange.

        ``traffic_bytes[p, q]`` is how many bytes node ``p`` sends node
        ``q`` this iteration (the diagonal is ignored — node-local data
        never touches the wire).
        """
        raise NotImplementedError


class FullMesh(_Topology):
    """A dedicated link per ordered node pair (all transfers overlap)."""

    name = "mesh"

    def exchange(self, traffic_bytes: np.ndarray) -> ExchangeReport:
        report = ExchangeReport()
        worst = 0.0
        for p in range(self.nodes):
            for q in range(self.nodes):
                if p == q:
                    continue
                b = int(traffic_bytes[p, q])
                if b <= 0:
                    continue
                self._charge((p, q), b)
                report.messages += 1
                report.total_bytes += b
                report.max_link_bytes = max(report.max_link_bytes, b)
                worst = max(
                    worst,
                    self.link.latency_cycles
                    + b / self.link.bandwidth_bytes_per_cycle,
                )
        report.cycles = worst
        return report


class SwitchedStar(_Topology):
    """Every node reaches its peers through one central switch.

    A message traverses the sender's uplink and the receiver's
    downlink; messages sharing a port serialize on it.  The exchange
    costs two hop latencies plus the busiest port's serialization time.
    """

    name = "star"

    def exchange(self, traffic_bytes: np.ndarray) -> ExchangeReport:
        report = ExchangeReport()
        t = np.asarray(traffic_bytes, dtype=np.int64).copy()
        np.fill_diagonal(t, 0)
        up = t.sum(axis=1)  # bytes leaving each node
        down = t.sum(axis=0)  # bytes arriving at each node
        report.messages = int(np.count_nonzero(t))
        report.total_bytes = int(t.sum())
        if report.total_bytes == 0:
            return report
        for p in range(self.nodes):
            if up[p]:
                self._charge(("up", p), int(up[p]))
            if down[p]:
                self._charge(("down", p), int(down[p]))
        busiest = int(max(up.max(), down.max()))
        report.max_link_bytes = busiest
        report.cycles = (
            2.0 * self.link.latency_cycles
            + busiest / self.link.bandwidth_bytes_per_cycle
        )
        return report


TOPOLOGIES = ("mesh", "star")


def topology_for(
    name: str, nodes: int, link: Optional[LinkParams] = None
) -> _Topology:
    """Construct the named topology (``"mesh"`` or ``"star"``)."""
    if name == "mesh":
        return FullMesh(nodes, link)
    if name == "star":
        return SwitchedStar(nodes, link)
    raise ConfigurationError(
        f"unknown topology {name!r}; expected one of {TOPOLOGIES}"
    )
