"""Distributed (multi-node) CoSPARSE: sharded runtime + modeled fabric.

The package splits a square operand into K contiguous row shards, runs
one co-reconfiguring runtime per shard, exchanges frontier non-zeros
through a modeled interconnect, and merges results bit-identically to
single-node.  See :mod:`repro.cluster.runtime` for the contract.
"""

from .partition import PARTITION_STRATEGIES, Shard, build_shards, shard_bounds
from .runtime import ClusterIterationRecord, ClusterLog, ShardedRuntime
from .topology import (
    ENTRY_BYTES,
    ExchangeReport,
    FullMesh,
    LinkParams,
    SwitchedStar,
    TOPOLOGIES,
    topology_for,
)

__all__ = [
    "ShardedRuntime",
    "ClusterLog",
    "ClusterIterationRecord",
    "Shard",
    "shard_bounds",
    "build_shards",
    "PARTITION_STRATEGIES",
    "ENTRY_BYTES",
    "LinkParams",
    "ExchangeReport",
    "FullMesh",
    "SwitchedStar",
    "TOPOLOGIES",
    "topology_for",
]
