"""Lightweight performance instrumentation for the reproduction.

Two concerns live here:

* **Counters** — a process-global :class:`PerfCounters` instance that the
  kernels and the trace-replay engine increment (functional executions
  vs. profile-only pricings, words replayed through the cache simulator)
  plus named wall-clock accumulators via :func:`timed`.  Tests use the
  counters to pin invariants like "the oracle policy executes exactly one
  functional kernel per invocation".
* **The microbench** — ``python -m repro.perf`` (the ``make perf``
  target) replays a 200k-access random trace through a 16-bank shared
  cache with every available engine, prints accesses/s per engine plus
  the speedup over the :class:`~repro.hardware.cache.ReferenceCacheBank`
  baseline, asserts the hit/miss/writeback counters are bit-identical,
  and emits one machine-readable JSON line for trajectory tracking.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = ["PerfCounters", "counters", "timed", "microbench", "main"]


@dataclass
class PerfCounters:
    """Process-global counters (see module docstring).

    Attributes
    ----------
    kernel_executions:
        SpMV kernel invocations that computed the functional semiring
        result.
    kernel_profile_only:
        Invocations that built only the :class:`KernelProfile`
        (``profile_only=True`` pricing probes).
    kernel_batched_columns:
        Batch columns processed by the batched (SpMM-style) kernels.
        Each batched column also counts once in ``kernel_executions`` /
        ``kernel_profile_only``, so the sequential invariants still hold;
        this counter isolates how much work went through the batch path.
    kernel_probe_discarded:
        Pricing probes whose winning result was thrown away instead of
        reused.  ``spmv_batch`` runs oracle/adaptive probes per column
        but the batched kernel always recomputes the winner (a known
        inefficiency, docs/model.md §6b); sequential ``spmv`` reuses the
        winner when it executed, so this isolates the wasted probes.
    trace_accesses:
        Words replayed through the batched cache engine.
    pricing_tasks:
        :class:`~repro.parallel.tasks.PricingTask` units submitted to a
        :class:`~repro.parallel.scheduler.SweepScheduler`.
    pricing_cache_hits / pricing_cache_misses:
        Persistent pricing-cache outcomes per submitted task.  A fully
        warm sweep shows ``hits == tasks`` and zero
        ``kernel_executions`` — the invariant the cache round-trip test
        pins.
    pricing_fallbacks:
        Pool runs that degraded to the serial path (worker death or
        timeout); each increments once regardless of how many tasks
        were re-run.
    tuning_runs:
        :func:`repro.tune.autotune` invocations (plan-cache hits
        included).
    tuning_candidates:
        Candidate configurations actually evaluated (zero on a warm
        plan-cache hit).
    tuning_plan_cache_hits / tuning_plan_cache_misses:
        Persistent tuning-plan cache outcomes.  A warm second tune of
        the same matrix shows one hit and zero ``tuning_candidates`` /
        ``pricing_tasks`` / ``kernel_executions`` — the OSKI
        "tune once, reuse forever" invariant the tune tests pin.
    tuning_plans_applied:
        Non-identity :class:`~repro.tune.TuningPlan`\\ s wired into a
        :class:`~repro.core.runtime.CoSparseRuntime` operand.
    cluster_spmv_calls:
        Distributed SpMV invocations through a
        :class:`~repro.cluster.ShardedRuntime` (one per cluster
        iteration, regardless of shard count).
    cluster_shard_tasks:
        Per-shard kernel steps those invocations fanned out (serial or
        pooled; ``K`` per cluster iteration).
    cluster_exchange_bytes:
        Modeled frontier-exchange traffic charged through the cluster
        interconnect, in bytes.
    wall_seconds:
        Named wall-clock accumulators fed by :func:`timed`.
    """

    kernel_executions: int = 0
    kernel_profile_only: int = 0
    kernel_batched_columns: int = 0
    kernel_probe_discarded: int = 0
    trace_accesses: int = 0
    pricing_tasks: int = 0
    pricing_cache_hits: int = 0
    pricing_cache_misses: int = 0
    pricing_fallbacks: int = 0
    tuning_runs: int = 0
    tuning_candidates: int = 0
    tuning_plan_cache_hits: int = 0
    tuning_plan_cache_misses: int = 0
    tuning_plans_applied: int = 0
    cluster_spmv_calls: int = 0
    cluster_shard_tasks: int = 0
    cluster_exchange_bytes: int = 0
    wall_seconds: Dict[str, float] = field(default_factory=dict)

    def reset(self) -> None:
        """Zero everything (tests bracket measurements with this)."""
        self.kernel_executions = 0
        self.kernel_profile_only = 0
        self.kernel_batched_columns = 0
        self.kernel_probe_discarded = 0
        self.trace_accesses = 0
        self.pricing_tasks = 0
        self.pricing_cache_hits = 0
        self.pricing_cache_misses = 0
        self.pricing_fallbacks = 0
        self.tuning_runs = 0
        self.tuning_candidates = 0
        self.tuning_plan_cache_hits = 0
        self.tuning_plan_cache_misses = 0
        self.tuning_plans_applied = 0
        self.cluster_spmv_calls = 0
        self.cluster_shard_tasks = 0
        self.cluster_exchange_bytes = 0
        self.wall_seconds.clear()

    def add_time(self, name: str, seconds: float) -> None:
        self.wall_seconds[name] = self.wall_seconds.get(name, 0.0) + seconds

    def snapshot(self) -> dict:
        """A plain-dict copy (safe to stash and diff)."""
        return {
            "kernel_executions": self.kernel_executions,
            "kernel_profile_only": self.kernel_profile_only,
            "kernel_batched_columns": self.kernel_batched_columns,
            "kernel_probe_discarded": self.kernel_probe_discarded,
            "trace_accesses": self.trace_accesses,
            "pricing_tasks": self.pricing_tasks,
            "pricing_cache_hits": self.pricing_cache_hits,
            "pricing_cache_misses": self.pricing_cache_misses,
            "pricing_fallbacks": self.pricing_fallbacks,
            "tuning_runs": self.tuning_runs,
            "tuning_candidates": self.tuning_candidates,
            "tuning_plan_cache_hits": self.tuning_plan_cache_hits,
            "tuning_plan_cache_misses": self.tuning_plan_cache_misses,
            "tuning_plans_applied": self.tuning_plans_applied,
            "cluster_spmv_calls": self.cluster_spmv_calls,
            "cluster_shard_tasks": self.cluster_shard_tasks,
            "cluster_exchange_bytes": self.cluster_exchange_bytes,
            "wall_seconds": dict(self.wall_seconds),
        }


#: The process-global instance every subsystem increments.
counters = PerfCounters()


@contextmanager
def timed(name: str, store: Optional[PerfCounters] = None):
    """Accumulate the block's wall-clock time under ``name``.

    When a tracer is live (:mod:`repro.obs`) the measured duration is
    also recorded as a ``wall.<name>`` observation in its metrics
    registry, so exported runs subsume these accumulators.
    """
    from .obs.tracer import active as _obs_active  # late: avoids a cycle

    store = store if store is not None else counters
    t0 = time.perf_counter()
    try:
        yield
    finally:
        dt = time.perf_counter() - t0
        store.add_time(name, dt)
        tracer = _obs_active()
        if tracer.enabled:
            tracer.metrics.observe(f"wall.{name}", dt)


# ----------------------------------------------------------------------
# Trace-replay microbench
# ----------------------------------------------------------------------
def microbench(
    n: int = 200_000,
    n_banks: int = 16,
    seed: int = 0,
    footprint_words: int = 1 << 20,
    write_fraction: float = 0.3,
    repeats: int = 3,
    include_reference: bool = True,
) -> dict:
    """Replay one random trace through every engine; return measurements.

    Engines: ``reference`` (the per-word ``OrderedDict`` simulator),
    ``numpy`` (the batched engine with the native path disabled), and
    ``native`` (the compiled kernel, when a host toolchain exists).  All
    engines must produce bit-identical (hits, misses, writebacks).
    """
    import numpy as np

    from .hardware import _native
    from .hardware.cache import BankedCache, ReferenceCacheBank
    from .hardware.params import DEFAULT_PARAMS

    rng = np.random.default_rng(seed)
    addrs = rng.integers(0, footprint_words, n).astype(np.int64)
    writes = rng.random(n) < write_fraction
    params = DEFAULT_PARAMS
    sets = params.cache_sets_per_bank * n_banks

    def best_of(make, runs):
        best = None
        cache = None
        for _ in range(max(runs, 1)):
            cache = make()
            t0 = time.perf_counter()
            cache.run_trace(addrs, writes)
            dt = time.perf_counter() - t0
            best = dt if best is None else min(best, dt)
        return best, (cache.hits, cache.misses, cache.writebacks)

    engines: Dict[str, dict] = {}

    if include_reference:
        sec, cnt = best_of(
            lambda: ReferenceCacheBank(params, sets_override=sets), runs=1
        )
        engines["reference"] = _engine_row(n, sec, cnt)

    saved = os.environ.get("REPRO_NATIVE")
    os.environ["REPRO_NATIVE"] = "0"
    try:
        best_of(lambda: BankedCache(n_banks, params), runs=1)  # warm numpy
        sec, cnt = best_of(lambda: BankedCache(n_banks, params), runs=repeats)
        engines["numpy"] = _engine_row(n, sec, cnt)
    finally:
        if saved is None:
            del os.environ["REPRO_NATIVE"]
        else:
            os.environ["REPRO_NATIVE"] = saved

    if _native.available():
        best_of(lambda: BankedCache(n_banks, params), runs=1)  # warm native
        sec, cnt = best_of(lambda: BankedCache(n_banks, params), runs=repeats)
        engines["native"] = _engine_row(n, sec, cnt)

    all_counters = {tuple(e["counters"]) for e in engines.values()}
    result = {
        "bench": "trace_replay",
        "n_accesses": n,
        "n_banks": n_banks,
        "footprint_words": footprint_words,
        "write_fraction": write_fraction,
        "engines": engines,
        "counters_identical": len(all_counters) == 1,
    }
    if include_reference:
        base = engines["reference"]["seconds"]
        for name, row in engines.items():
            row["speedup_vs_reference"] = round(base / row["seconds"], 2)
    return result


def _engine_row(n: int, seconds: float, cnt) -> dict:
    return {
        "seconds": round(seconds, 6),
        "macc_per_s": round(n / seconds / 1e6, 3),
        "counters": [int(c) for c in cnt],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf",
        description="Trace-replay microbench (see `make perf`).",
    )
    parser.add_argument("--n", type=int, default=200_000,
                        help="trace length in word accesses (default 200000)")
    parser.add_argument("--banks", type=int, default=16,
                        help="shared-cache bank count (default 16)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed runs per engine, best-of (default 3)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--no-reference", action="store_true",
                        help="skip the slow OrderedDict baseline")
    args = parser.parse_args(argv)

    result = microbench(
        n=args.n,
        n_banks=args.banks,
        seed=args.seed,
        repeats=args.repeats,
        include_reference=not args.no_reference,
    )
    for name, row in result["engines"].items():
        speedup = row.get("speedup_vs_reference")
        extra = f"  ({speedup:g}x vs reference)" if speedup else ""
        print(
            f"{name:>9}: {row['macc_per_s']:8.2f} M acc/s "
            f"({row['seconds'] * 1e3:8.2f} ms){extra}"
        )
    ok = result["counters_identical"]
    print(f"counters identical across engines: {ok}")
    print(json.dumps(result, sort_keys=True))
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
