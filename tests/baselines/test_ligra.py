"""Ligra-engine tests: direction rule, functional agreement, pricing."""

import numpy as np
import pytest

from repro.baselines import LigraEngine, VertexSubset
from repro.errors import AlgorithmError
from repro.graphs import Graph, bfs, collaborative_filtering, pagerank, sssp


@pytest.fixture(scope="module")
def graph():
    from repro.workloads import chung_lu

    return Graph(chung_lu(800, 8000, seed=13), name="ligra-test")


@pytest.fixture
def engine(graph):
    return LigraEngine(graph)


class TestVertexSubset:
    def test_single(self):
        vs = VertexSubset.single(10, 4)
        assert vs.size == 1
        assert vs.density == 0.1

    def test_mask_round_trip(self):
        mask = np.asarray([False, True, True, False])
        vs = VertexSubset.from_mask(mask)
        assert np.array_equal(vs.to_mask(), mask)

    def test_all_vertices(self):
        assert VertexSubset.all_vertices(7).size == 7


class TestDirectionRule:
    def test_threshold_is_e_over_20(self, engine, graph):
        assert engine.threshold == graph.n_edges // 20

    def test_small_frontier_pushes(self, engine):
        assert engine.choose_direction(VertexSubset.single(800, 0)) == "push"

    def test_huge_frontier_pulls(self, engine):
        assert engine.choose_direction(VertexSubset.all_vertices(800)) == "pull"

    def test_bfs_switches_directions(self, engine, graph):
        src = int(np.argmax(graph.out_degrees()))
        run = engine.bfs(src)
        dirs = run.directions()
        assert "push" in dirs and "pull" in dirs
        # the classic push -> pull -> push pattern: starts sparse
        assert dirs[0] == "push"


class TestFunctionalAgreement:
    """Ligra must compute exactly what the CoSPARSE drivers compute."""

    def test_bfs(self, engine, graph):
        run = bfs(graph, 0, geometry="2x4")
        li = engine.bfs(0)
        assert np.allclose(
            np.nan_to_num(run.values, posinf=-1),
            np.nan_to_num(li.values, posinf=-1),
        )

    def test_sssp(self, engine, graph):
        run = sssp(graph, 0, geometry="2x4")
        li = engine.sssp(0)
        assert np.allclose(
            np.nan_to_num(run.values, posinf=-1),
            np.nan_to_num(li.values, posinf=-1),
        )

    def test_sssp_rejects_negative(self):
        g = Graph.from_edges(2, [0], [1], [-2.0])
        with pytest.raises(AlgorithmError):
            LigraEngine(g).sssp(0)

    def test_pagerank(self, engine, graph):
        run = pagerank(graph, geometry="2x4", max_iters=8, tol=0.0)
        li = engine.pagerank(max_iters=8, tol=0.0)
        assert np.allclose(run.values, li.values)

    def test_cf(self, engine, graph):
        run = collaborative_filtering(graph, geometry="2x4", iterations=3, k=4)
        li = engine.cf(iterations=3, k=4)
        assert np.allclose(run.values, li.values)


class TestPricing:
    def test_time_and_energy_positive(self, engine):
        run = engine.bfs(0)
        assert run.time_s > 0
        assert run.energy_j == pytest.approx(run.time_s * engine.platform.power_w)

    def test_pull_costs_independent_of_frontier(self, engine, graph):
        a = engine._price("pull", 10, 100)
        b = engine._price("pull", 700, 5000)
        assert a == pytest.approx(b)

    def test_push_scales_with_edges(self, engine):
        assert engine._price("push", 10, 10_000) > engine._price("push", 10, 100)

    def test_wide_values_cost_more(self, engine):
        assert engine._price("pull", 10, 100, value_words=8) > engine._price(
            "pull", 10, 100, value_words=1
        )

    def test_records_per_iteration(self, engine):
        run = engine.pagerank(max_iters=5, tol=0.0)
        assert run.iterations == 5
        assert all(r.edges_processed >= 0 for r in run.records)
