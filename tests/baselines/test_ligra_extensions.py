"""Ligra-engine extension apps (CC, BC) vs the CoSPARSE drivers."""

import numpy as np
import pytest

from repro.baselines import LigraEngine
from repro.graphs import (
    Graph,
    betweenness_centrality,
    connected_components,
)
from repro.workloads import chung_lu


@pytest.fixture(scope="module")
def graph():
    return Graph(chung_lu(600, 5000, seed=17), name="ligra-ext")


@pytest.fixture
def engine(graph):
    return LigraEngine(graph)


class TestComponents:
    def test_matches_cosparse(self, engine, graph):
        ours = connected_components(graph, geometry="2x4")
        theirs = engine.connected_components()
        assert np.allclose(ours.values, theirs.values)

    def test_labels_are_min_member(self, engine):
        run = engine.connected_components()
        assert run.values.min() == 0.0
        assert np.all(run.values <= np.arange(len(run.values)))

    def test_priced(self, engine):
        run = engine.connected_components()
        assert run.time_s > 0 and run.energy_j > 0


class TestBetweenness:
    def test_matches_cosparse(self, engine, graph):
        srcs = [0, 3, 11, 29]
        ours = betweenness_centrality(graph, sources=srcs, geometry="2x4")
        theirs = engine.betweenness_centrality(sources=srcs)
        assert np.allclose(ours.values, theirs.values)

    def test_matches_networkx_exact(self):
        networkx = pytest.importorskip("networkx")
        g_nx = networkx.gnp_random_graph(40, 0.12, seed=6, directed=True)
        g = Graph.from_networkx(g_nx)
        run = LigraEngine(g).betweenness_centrality()
        ref = networkx.betweenness_centrality(g_nx, normalized=False)
        for v in range(40):
            assert run.values[v] == pytest.approx(ref[v], abs=1e-9)

    def test_directions_recorded(self, engine):
        run = engine.betweenness_centrality(sources=[0])
        assert run.iterations >= 1
        assert all(r.direction in ("push", "pull") for r in run.records)
