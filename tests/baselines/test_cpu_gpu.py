"""CPU/GPU baseline cost-model tests (Fig. 8's comparators)."""

import numpy as np
import pytest

from repro.baselines import (
    CPU_I7_6700K,
    GPU_V100,
    XEON_E7_4860,
    cpu_spmv,
    gpu_spmv,
)
from repro.formats import CSRMatrix


@pytest.fixture
def csr(medium_coo):
    return CSRMatrix.from_coo(medium_coo)


class TestFunctional:
    def test_cpu_result_matches_scipy(self, csr, medium_coo, rng):
        x = rng.random(csr.n_cols)
        rep = cpu_spmv(csr, x)
        assert np.allclose(rep.result, medium_coo.to_scipy() @ x)

    def test_gpu_result_matches_cpu(self, csr, rng):
        x = rng.random(csr.n_cols)
        assert np.allclose(cpu_spmv(csr, x).result, gpu_spmv(csr, x).result)

    def test_compute_false_skips_result(self, csr, rng):
        rep = cpu_spmv(csr, rng.random(csr.n_cols), compute=False)
        assert rep.result is None
        assert rep.time_s > 0


class TestCostShape:
    def test_time_independent_of_vector_density(self, csr):
        """MKL/cuSPARSE do not exploit frontier sparsity — the mechanism
        behind CoSPARSE's growing advantage at low densities."""
        sparse_v = np.zeros(csr.n_cols)
        sparse_v[0] = 1.0
        dense_v = np.ones(csr.n_cols)
        a = cpu_spmv(csr, sparse_v, compute=False).time_s
        b = cpu_spmv(csr, dense_v, compute=False).time_s
        assert a == pytest.approx(b)

    def test_gpu_stalls_grow_with_density(self, csr):
        sparse_v = np.zeros(csr.n_cols)
        sparse_v[0] = 1.0
        dense_v = np.ones(csr.n_cols)
        assert gpu_spmv(csr, dense_v, compute=False).time_s > gpu_spmv(
            csr, sparse_v, compute=False
        ).time_s

    def test_energy_is_time_times_power(self, csr, rng):
        x = rng.random(csr.n_cols)
        rep = cpu_spmv(csr, x, compute=False)
        assert rep.energy_j == pytest.approx(rep.time_s * CPU_I7_6700K.power_w)

    def test_achieved_bw_below_peak(self, csr, rng):
        x = rng.random(csr.n_cols)
        for rep, platform in (
            (cpu_spmv(csr, x, compute=False), CPU_I7_6700K),
            (gpu_spmv(csr, x, compute=False), GPU_V100),
        ):
            assert rep.achieved_bw < platform.peak_bw

    def test_gpu_launch_overhead_dominates_tiny_kernels(self):
        from repro.formats import COOMatrix

        tiny = CSRMatrix.from_coo(COOMatrix(8, 8, [0], [1], [1.0]))
        rep = gpu_spmv(tiny, np.ones(8), compute=False)
        assert rep.time_s >= GPU_V100.invocation_overhead_s


class TestPlatforms:
    def test_power_ordering(self):
        """GPU > Xeon > desktop CPU in raw power draw."""
        assert XEON_E7_4860.power_w > CPU_I7_6700K.power_w
        assert GPU_V100.power_w > CPU_I7_6700K.power_w

    def test_cpu_power_hundreds_of_times_transmuter(self):
        """The paper: 'the CPU consumes at least 200x more power'."""
        from repro.hardware import EnergyModel, Geometry

        array = EnergyModel(Geometry(16, 16))
        assert XEON_E7_4860.power_w > 200 * array.static_power_w

    def test_xeon_area_about_40x(self):
        from repro.hardware import EnergyModel, Geometry

        array = EnergyModel(Geometry(16, 16))
        ratio = XEON_E7_4860.area_mm2 / array.area_mm2
        assert 10 < ratio < 150  # "40x more area", coarse model
