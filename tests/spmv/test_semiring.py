"""Table I semiring tests."""

import numpy as np
import pytest

from repro.errors import AlgorithmError
from repro.spmv import (
    bfs_semiring,
    cf_semiring,
    pagerank_semiring,
    spmv_semiring,
    sssp_semiring,
)


class TestSpMV:
    def test_combine_multiplies(self):
        sr = spmv_semiring()
        c = sr.combine(np.asarray([2.0]), np.asarray([3.0]), None, None, None)
        assert c[0] == 6.0

    def test_identity_and_reduce(self):
        sr = spmv_semiring()
        assert sr.identity == 0.0
        out = sr.init_output(3, None)
        sr.scatter(out, np.asarray([1, 1]), np.asarray([2.0, 3.0]))
        assert out[1] == 5.0

    def test_no_vector_op(self):
        sr = spmv_semiring()
        x = np.asarray([1.0, 2.0])
        assert np.array_equal(sr.apply_vector_op(x, x), x)


class TestBFS:
    def test_propagates_source_label(self):
        sr = bfs_semiring()
        c = sr.combine(np.asarray([9.0]), np.asarray([4.0]), None, None, None)
        assert c[0] == 4.0  # edge weight ignored

    def test_min_reduce(self):
        sr = bfs_semiring()
        out = sr.init_output(2, None)
        assert np.all(np.isinf(out))
        sr.scatter(out, np.asarray([0, 0]), np.asarray([3.0, 1.0]))
        assert out[0] == 1.0

    def test_absent_is_inf(self):
        assert np.isinf(bfs_semiring().absent)


class TestSSSP:
    def test_relaxation(self):
        sr = sssp_semiring()
        c = sr.combine(np.asarray([2.5]), np.asarray([1.0]), None, None, None)
        assert c[0] == 3.5

    def test_carry_output_requires_current(self):
        sr = sssp_semiring()
        with pytest.raises(AlgorithmError):
            sr.init_output(3, None)

    def test_carry_output_copies(self):
        sr = sssp_semiring()
        cur = np.asarray([1.0, np.inf])
        out = sr.init_output(2, cur)
        out[0] = 0.5
        assert cur[0] == 1.0  # untouched


class TestPageRank:
    def test_divides_by_source_degree(self):
        deg = np.asarray([2.0, 4.0])
        sr = pagerank_semiring(deg)
        c = sr.combine(
            np.ones(2), np.asarray([1.0, 1.0]), None, np.asarray([0, 1]), None
        )
        assert np.allclose(c, [0.5, 0.25])

    def test_zero_degree_safe(self):
        sr = pagerank_semiring(np.asarray([0.0]))
        c = sr.combine(np.ones(1), np.asarray([1.0]), None, np.asarray([0]), None)
        assert np.isfinite(c[0])

    def test_vector_op(self):
        sr = pagerank_semiring(np.ones(1), alpha=0.15)
        out = sr.apply_vector_op(np.asarray([1.0]), np.asarray([0.0]))
        assert out[0] == pytest.approx(0.15 + 0.85)


class TestCF:
    def test_vector_valued(self):
        sr = cf_semiring(k=4)
        assert sr.value_words == 4
        assert sr.needs_dst

    def test_rejects_bad_k(self):
        with pytest.raises(AlgorithmError):
            cf_semiring(k=0)

    def test_gradient_direction(self):
        """For rating > prediction the update pushes factors together."""
        sr = cf_semiring(lambda_=0.0, k=2)
        u = np.asarray([[1.0, 0.0]])
        v = np.asarray([[1.0, 0.0]])
        high = sr.combine(np.asarray([5.0]), u, v, None, None)
        low = sr.combine(np.asarray([0.5]), u, v, None, None)
        assert high[0, 0] > low[0, 0]

    def test_init_output_shape(self):
        sr = cf_semiring(k=3)
        out = sr.init_output(5, None)
        assert out.shape == (5, 3)

    def test_vector_op_step(self):
        sr = cf_semiring(beta=0.1, k=2)
        upd = np.ones((1, 2))
        prev = np.full((1, 2), 2.0)
        assert np.allclose(sr.apply_vector_op(upd, prev), 2.0 + 0.1)
