"""Glue test: the IP trace's schedule equals the BlockedCOO layout.

The IP trace generator charges a *sequential* matrix stream, which is
only honest if the stored layout matches the (partition, vblock)-major
execution order.  ``BlockedCOO`` is that preprocessing; this test pins
the two to each other so neither can drift.
"""

import numpy as np

from repro.formats import BlockedCOO
from repro.hardware import Geometry, HWMode, Region
from repro.spmv import build_ip_partitions, inner_product, spmv_semiring, vblock_width


def test_trace_vector_order_matches_blocked_schedule(medium_coo, rng):
    geometry = Geometry(2, 4)
    v = rng.random(medium_coo.n_cols)
    res = inner_product(
        medium_coo, v, spmv_semiring(), geometry, HWMode.SCS, with_trace=True
    )
    width = res.profile.meta["vblock_width"]

    part = build_ip_partitions(
        medium_coo.row_extents(), geometry.tiles, geometry.pes_per_tile
    )
    flat_bounds = np.concatenate(
        [b[:-1] for b in part.pe_bounds] + [[medium_coo.n_rows]]
    ).astype(np.int64)
    blocked = BlockedCOO(medium_coo, flat_bounds, width)

    for t in range(geometry.tiles):
        for p in range(geometry.pes_per_tile):
            k = t * geometry.pes_per_tile + p
            trace = res.profile.tiles[t].pes[p].trace
            # the vector gathers appear once per entry, in schedule order
            vec_addrs = trace.addrs[trace.regions == int(Region.VECTOR_IN)]
            sched_cols = np.concatenate(
                [cols for _vb, _rows, cols, _vals in blocked.iter_schedule(k)]
                or [np.zeros(0, dtype=np.int64)]
            )
            assert np.array_equal(vec_addrs, sched_cols)


def test_trace_matrix_stream_is_sequential(medium_coo, rng):
    geometry = Geometry(2, 2)
    v = rng.random(medium_coo.n_cols)
    res = inner_product(
        medium_coo, v, spmv_semiring(), geometry, HWMode.SC, with_trace=True
    )
    for tile in res.profile.tiles:
        for pe in tile.pes:
            m = pe.trace.addrs[pe.trace.regions == int(Region.MATRIX)]
            if len(m):
                assert np.all(np.diff(m) > 0)  # strictly increasing words
