"""Outer-product kernel tests: fast path, exact heap merge, profile."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ShapeError
from repro.formats import CSCMatrix, SparseVector
from repro.hardware import Geometry, HWMode, Region
from repro.spmv import (
    bfs_semiring,
    cf_semiring,
    outer_product,
    reference_spmv,
    spmv_semiring,
    sssp_semiring,
)


@pytest.fixture
def geom():
    return Geometry(2, 4)


def frontier_for(csc, density, rng):
    nnz = max(1, int(density * csc.n_cols))
    idx = rng.choice(csc.n_cols, nnz, replace=False)
    return SparseVector(csc.n_cols, idx, rng.uniform(0.5, 1.5, nnz))


class TestFunctional:
    def test_matches_dense_product(self, small_dense, small_csc, geom, rng):
        sv = frontier_for(small_csc, 0.2, rng)
        res = outer_product(small_csc, sv, spmv_semiring(), geom, HWMode.PC)
        assert np.allclose(res.values, small_dense @ sv.to_dense())

    def test_exact_merge_matches_fast_path(self, small_dense, small_csc, geom, rng):
        sv = frontier_for(small_csc, 0.3, rng)
        fast = outer_product(small_csc, sv, spmv_semiring(), geom, HWMode.PS)
        exact = outer_product(
            small_csc, sv, spmv_semiring(), geom, HWMode.PS, exact=True
        )
        assert np.allclose(fast.values, exact.values)

    def test_min_semiring_exact(self, small_dense, small_csc, geom, rng):
        sr = bfs_semiring()
        sv = frontier_for(small_csc, 0.15, rng)
        res = outer_product(small_csc, sv, sr, geom, HWMode.PC, exact=True)
        dense = np.full(small_csc.n_cols, np.inf)
        dense[sv.indices] = sv.values
        ref = reference_spmv(small_dense, dense, sr)
        assert np.allclose(res.values, ref, equal_nan=True)

    def test_carry_semiring(self, small_dense, small_csc, geom, rng):
        sr = sssp_semiring()
        cur = rng.random(small_csc.n_rows) * 5
        sv = frontier_for(small_csc, 0.2, rng)
        res = outer_product(
            small_csc, sv, sr, geom, HWMode.PC, current=cur, exact=True
        )
        dense = np.full(small_csc.n_cols, np.inf)
        dense[sv.indices] = sv.values
        assert np.allclose(res.values, reference_spmv(small_dense, dense, sr, cur))

    def test_empty_frontier(self, small_csc, geom):
        res = outer_product(
            small_csc, SparseVector.empty(small_csc.n_cols), spmv_semiring(), geom, HWMode.PC
        )
        assert not res.touched.any()
        assert np.allclose(res.values, 0.0)

    def test_touched_only_reachable_rows(self, small_csc, geom, rng):
        sv = frontier_for(small_csc, 0.1, rng)
        res = outer_product(small_csc, sv, spmv_semiring(), geom, HWMode.PC)
        rows, _, _ = small_csc.gather_columns(sv.indices)
        expect = np.zeros(small_csc.n_rows, dtype=bool)
        expect[rows] = True
        assert np.array_equal(res.touched, expect)


class TestValidation:
    def test_rejects_scs(self, small_csc, geom):
        sv = SparseVector.empty(small_csc.n_cols)
        with pytest.raises(ConfigurationError):
            outer_product(small_csc, sv, spmv_semiring(), geom, HWMode.SCS)

    def test_accepts_sc_for_fig9_pricing(self, small_csc, geom, rng):
        sv = frontier_for(small_csc, 0.1, rng)
        res = outer_product(small_csc, sv, spmv_semiring(), geom, HWMode.SC)
        assert res.profile.mode is HWMode.SC

    def test_rejects_dense_frontier(self, small_csc, geom):
        with pytest.raises(ShapeError):
            outer_product(
                small_csc, np.ones(small_csc.n_cols), spmv_semiring(), geom, HWMode.PC
            )

    def test_rejects_wrong_length(self, small_csc, geom):
        with pytest.raises(ShapeError):
            outer_product(
                small_csc, SparseVector.empty(3), spmv_semiring(), geom, HWMode.PC
            )

    def test_rejects_vector_valued_semirings(self, small_csc, geom):
        with pytest.raises(ConfigurationError):
            outer_product(
                small_csc,
                SparseVector.empty(small_csc.n_cols),
                cf_semiring(k=2),
                geom,
                HWMode.PC,
            )


class TestProfile:
    def test_only_touched_entries_counted(self, medium_csc, geom, rng):
        sv = frontier_for(medium_csc, 0.05, rng)
        res = outer_product(medium_csc, sv, spmv_semiring(), geom, HWMode.PC)
        meta = res.profile.meta
        assert meta["touched_columns"] == sv.nnz
        rows, _, _ = medium_csc.gather_columns(sv.indices)
        assert meta["touched_entries"] == len(rows)
        matrix_words = sum(
            pe.stream(Region.MATRIX).count
            for t in res.profile.tiles
            for pe in t.pes
        )
        assert matrix_words == 2 * len(rows)

    def test_ps_heap_in_spm(self, medium_csc, geom, rng):
        sv = frontier_for(medium_csc, 0.05, rng)
        res = outer_product(medium_csc, sv, spmv_semiring(), geom, HWMode.PS)
        heap_streams = [
            s
            for t in res.profile.tiles
            for pe in t.pes
            for s in pe.streams
            if s.region is Region.HEAP
        ]
        assert any(s.in_spm for s in heap_streams)

    def test_pc_heap_not_in_spm(self, medium_csc, geom, rng):
        sv = frontier_for(medium_csc, 0.05, rng)
        res = outer_product(medium_csc, sv, spmv_semiring(), geom, HWMode.PC)
        assert all(
            not s.in_spm
            for t in res.profile.tiles
            for pe in t.pes
            for s in pe.streams
        )

    def test_lcp_serial_work_present(self, medium_csc, geom, rng):
        sv = frontier_for(medium_csc, 0.1, rng)
        res = outer_product(medium_csc, sv, spmv_semiring(), geom, HWMode.PC)
        assert sum(t.lcp_serial_elements for t in res.profile.tiles) > 0
        assert sum(t.lcp_output_words for t in res.profile.tiles) > 0

    def test_exact_mode_measures_heap_accesses(self, small_csc, geom, rng):
        sv = frontier_for(small_csc, 0.2, rng)
        res = outer_product(
            small_csc, sv, spmv_semiring(), geom, HWMode.PS, exact=True
        )
        heap = [
            s
            for t in res.profile.tiles
            for pe in t.pes
            for s in pe.streams
            if s.region is Region.HEAP
        ]
        assert sum(s.count for s in heap) > 0

    def test_trace_generation(self, small_csc, geom, rng):
        sv = frontier_for(small_csc, 0.2, rng)
        res = outer_product(
            small_csc, sv, spmv_semiring(), geom, HWMode.PS, with_trace=True
        )
        assert res.profile.has_traces()

    def test_unbalanced_tiles(self, powerlaw_coo, geom, rng):
        csc = CSCMatrix.from_coo(powerlaw_coo)
        sv = frontier_for(csc, 0.1, rng)
        bal = outer_product(csc, sv, spmv_semiring(), geom, HWMode.PC, balanced=True)
        naive = outer_product(
            csc, sv, spmv_semiring(), geom, HWMode.PC, balanced=False
        )
        assert np.allclose(bal.values, naive.values)  # same math either way
