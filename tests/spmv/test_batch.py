"""Batched kernels: bit-identity against the sequential kernels.

The contract under test: every column of ``inner_product_batch`` /
``outer_product_batch`` returns exactly what the sequential kernel
returns for that column alone — functional values, touched mask, and a
profile that prices to the same cycle count.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ShapeError, SimulationError
from repro.formats import MultiVector, SparseVector
from repro.hardware import HWMode, TransmuterSystem
from repro.hardware.params import DEFAULT_PARAMS
from repro.perf import counters
from repro.spmv import (
    cf_semiring,
    inner_product,
    inner_product_batch,
    outer_product,
    outer_product_batch,
    spmv_semiring,
    sssp_semiring,
)
from repro.spmv.batch import _distinct_sorted
from repro.spmv.semiring import bfs_semiring
from repro.workloads import random_frontier


def _price(geometry, profile):
    return TransmuterSystem(geometry, DEFAULT_PARAMS).evaluate_without_switching(
        profile
    ).cycles


def _assert_result_identical(batch, sequential):
    assert np.array_equal(batch.values, sequential.values)
    assert np.array_equal(batch.touched, sequential.touched)
    assert batch.profile.meta == sequential.profile.meta


class TestInnerBatch:
    @pytest.mark.parametrize("hw_mode", [HWMode.SC, HWMode.SCS])
    def test_bit_identical_per_column(self, medium_coo, geom24, rng, hw_mode):
        sr = spmv_semiring()
        n = medium_coo.n_cols
        cols = []
        for dens in (0.0, 0.01, 0.4, 1.0):
            mask = rng.random(n) < dens
            cols.append(np.where(mask, rng.uniform(0.5, 1.5, n), 0.0))
        mv = MultiVector(cols)
        batch = inner_product_batch(
            medium_coo, mv, sr, geom24, hw_mode=hw_mode
        )
        for j, col in enumerate(cols):
            seq = inner_product(medium_coo, col, sr, geom24, hw_mode=hw_mode)
            _assert_result_identical(batch[j], seq)
            assert _price(geom24, batch[j].profile) == _price(
                geom24, seq.profile
            )

    def test_min_semiring_with_inf_absent(self, medium_coo, geom24, rng):
        sr = bfs_semiring()
        n = medium_coo.n_cols
        cols = []
        for dens in (0.005, 0.3):
            arr = np.full(n, np.inf)
            idx = rng.choice(n, int(dens * n), replace=False)
            arr[idx] = rng.uniform(0.0, 3.0, len(idx))
            cols.append(arr)
        mv = MultiVector(cols, absent=np.inf)
        batch = inner_product_batch(medium_coo, mv, sr, geom24)
        for j, col in enumerate(cols):
            seq = inner_product(medium_coo, col, sr, geom24)
            _assert_result_identical(batch[j], seq)

    def test_carry_semiring_per_column_currents(self, medium_coo, geom24, rng):
        sr = sssp_semiring()
        n = medium_coo.n_cols
        currents = [rng.uniform(1.0, 5.0, n) for _ in range(2)]
        cols = []
        for seed in (1, 2):
            arr = np.full(n, np.inf)
            sv = random_frontier(n, 0.2, seed=seed)
            arr[sv.indices] = sv.values
            cols.append(arr)
        mv = MultiVector(cols, absent=np.inf)
        batch = inner_product_batch(
            medium_coo, mv, sr, geom24, currents=currents
        )
        for j, (col, cur) in enumerate(zip(cols, currents)):
            seq = inner_product(
                medium_coo, col, sr, geom24, current=cur
            )
            _assert_result_identical(batch[j], seq)

    def test_column_subset_and_profile_only(self, medium_coo, geom24, rng):
        sr = spmv_semiring()
        n = medium_coo.n_cols
        cols = [rng.random(n), rng.random(n), rng.random(n)]
        mv = MultiVector(cols)
        batch = inner_product_batch(
            medium_coo, mv, sr, geom24, columns=[2, 0], profile_only=True
        )
        assert len(batch) == 2
        assert batch[0].values is None and not batch[0].executed
        seq = inner_product(
            medium_coo, cols[2], sr, geom24, profile_only=True
        )
        assert batch[0].profile.meta == seq.profile.meta

    def test_validation(self, medium_coo, geom24, rng):
        sr = spmv_semiring()
        mv = MultiVector([rng.random(medium_coo.n_cols)])
        with pytest.raises(ConfigurationError):
            inner_product_batch(medium_coo, mv, sr, geom24, hw_mode=HWMode.PC)
        with pytest.raises(ShapeError):
            inner_product_batch(
                medium_coo, rng.random(medium_coo.n_cols), sr, geom24
            )
        with pytest.raises(ConfigurationError):
            inner_product_batch(medium_coo, mv, cf_semiring(), geom24)
        bad_absent = MultiVector([rng.random(medium_coo.n_cols)], absent=np.inf)
        with pytest.raises(ConfigurationError):
            inner_product_batch(medium_coo, bad_absent, sr, geom24)
        with pytest.raises(ShapeError):
            inner_product_batch(
                medium_coo, mv, sr, geom24, currents=[None, None]
            )

    def test_batch_counter(self, medium_coo, geom24, rng):
        sr = spmv_semiring()
        mv = MultiVector([rng.random(medium_coo.n_cols) for _ in range(3)])
        counters.reset()
        inner_product_batch(medium_coo, mv, sr, geom24)
        assert counters.kernel_batched_columns == 3
        assert counters.kernel_executions == 3


class TestOuterBatch:
    @pytest.mark.parametrize("hw_mode", [HWMode.PC, HWMode.PS])
    def test_bit_identical_per_column(self, medium_csc, geom24, hw_mode):
        sr = spmv_semiring()
        n = medium_csc.n_cols
        cols = [
            random_frontier(n, 0.002, seed=1),
            random_frontier(n, 0.05, seed=2),
            SparseVector.empty(n),
            random_frontier(n, 0.05, seed=2),  # duplicate: full overlap
        ]
        mv = MultiVector(cols)
        batch = outer_product_batch(medium_csc, mv, sr, geom24, hw_mode=hw_mode)
        for j, sv in enumerate(cols):
            seq = outer_product(medium_csc, sv, sr, geom24, hw_mode=hw_mode)
            _assert_result_identical(batch[j], seq)
            assert _price(geom24, batch[j].profile) == _price(
                geom24, seq.profile
            )

    def test_carry_semiring(self, medium_csc, geom24, rng):
        sr = sssp_semiring()
        n = medium_csc.n_cols
        cols = [random_frontier(n, 0.01, seed=3), random_frontier(n, 0.1, seed=4)]
        currents = [rng.uniform(0.0, 9.0, medium_csc.n_rows) for _ in cols]
        mv = MultiVector(cols, absent=np.inf)
        batch = outer_product_batch(
            medium_csc, mv, sr, geom24, currents=currents
        )
        for j, (sv, cur) in enumerate(zip(cols, currents)):
            seq = outer_product(medium_csc, sv, sr, geom24, current=cur)
            _assert_result_identical(batch[j], seq)

    def test_all_empty_batch(self, medium_csc, geom24):
        sr = spmv_semiring()
        mv = MultiVector([SparseVector.empty(medium_csc.n_cols)] * 2)
        batch = outer_product_batch(medium_csc, mv, sr, geom24)
        for res in batch:
            assert res.touched.sum() == 0
            assert np.array_equal(res.values, np.zeros(medium_csc.n_rows))

    def test_validation(self, medium_csc, geom24):
        sr = spmv_semiring()
        mv = MultiVector([SparseVector.empty(medium_csc.n_cols)])
        with pytest.raises(ConfigurationError):
            outer_product_batch(medium_csc, mv, sr, geom24, hw_mode=HWMode.SCS)
        with pytest.raises(ShapeError):
            outer_product_batch(
                medium_csc, mv, sr, geom24, columns=[1]
            )


class TestDistinctSorted:
    def test_matches_unique_on_sorted_input(self, rng):
        keys = np.sort(rng.integers(0, 50, 300))
        assert np.array_equal(_distinct_sorted(keys), np.unique(keys))

    def test_empty(self):
        e = np.zeros(0, dtype=np.int64)
        assert len(_distinct_sorted(e)) == 0


class TestExactCrossCheckError:
    """The OP exact-path cross-check raises SimulationError (not a bare
    assert), so it survives ``python -O``."""

    def test_mismatch_raises_simulation_error(
        self, medium_csc, geom24, monkeypatch
    ):
        import repro.spmv.outer as outer_mod

        sr = spmv_semiring()
        sv = random_frontier(medium_csc.n_cols, 0.01, seed=5)
        real = outer_mod._exact_merge

        def corrupted(*args, **kwargs):
            out, traces, stats = real(*args, **kwargs)
            out = out + 1.0
            return out, traces, stats

        monkeypatch.setattr(outer_mod, "_exact_merge", corrupted)
        with pytest.raises(SimulationError):
            outer_product(medium_csc, sv, sr, geom24, exact=True)
