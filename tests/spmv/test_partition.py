"""Static partitioning tests (Section III-B), incl. property-based."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.spmv import (
    build_ip_partitions,
    equal_nnz_row_bounds,
    equal_rows_bounds,
    nnz_per_partition,
    vblock_width,
)


def row_ptr_from_counts(counts):
    ptr = np.zeros(len(counts) + 1, dtype=np.int64)
    np.cumsum(counts, out=ptr[1:])
    return ptr


class TestEqualNnz:
    def test_uniform_rows_split_evenly(self):
        ptr = row_ptr_from_counts([4] * 16)
        bounds = equal_nnz_row_bounds(ptr, 4)
        assert list(bounds) == [0, 4, 8, 12, 16]

    def test_skewed_rows_balanced_by_nnz(self):
        counts = [100] + [1] * 99
        ptr = row_ptr_from_counts(counts)
        bounds = equal_nnz_row_bounds(ptr, 2)
        parts = nnz_per_partition(ptr, bounds)
        # the hub row forces partition 0 to hold ~it alone
        assert parts[0] >= 100
        assert bounds[1] <= 2

    def test_rejects_nonpositive_parts(self):
        with pytest.raises(ShapeError):
            equal_nnz_row_bounds(row_ptr_from_counts([1, 2]), 0)

    @given(
        counts=st.lists(st.integers(0, 50), min_size=1, max_size=200),
        parts=st.integers(1, 16),
    )
    @settings(max_examples=150, deadline=None)
    def test_properties(self, counts, parts):
        """Bounds are monotone, cover all rows, and partitions are
        near-balanced at row granularity."""
        ptr = row_ptr_from_counts(counts)
        bounds = equal_nnz_row_bounds(ptr, parts)
        assert bounds[0] == 0
        assert bounds[-1] == len(counts)
        assert np.all(np.diff(bounds) >= 0)
        sizes = nnz_per_partition(ptr, bounds)
        assert sizes.sum() == sum(counts)
        if sum(counts) and max(counts) > 0:
            # no partition exceeds the ideal share by more than one row
            ideal = sum(counts) / parts
            assert sizes.max() <= ideal + max(counts)


    def test_empty_matrix_pathology(self):
        """All rows empty: any split works, bounds must still tile."""
        ptr = row_ptr_from_counts([0] * 12)
        bounds = equal_nnz_row_bounds(ptr, 4)
        assert bounds[0] == 0 and bounds[-1] == 12
        assert np.all(np.diff(bounds) >= 0)
        assert nnz_per_partition(ptr, bounds).sum() == 0

    def test_one_dense_row_pathology(self):
        """A single row holding every non-zero: one partition takes it,
        the rest go empty — never a crash or an uncovered row."""
        counts = [0] * 5 + [1000] + [0] * 5
        ptr = row_ptr_from_counts(counts)
        for parts in (1, 2, 8):
            bounds = equal_nnz_row_bounds(ptr, parts)
            assert bounds[0] == 0 and bounds[-1] == len(counts)
            sizes = nnz_per_partition(ptr, bounds)
            assert sizes.sum() == 1000
            assert sizes.max() == 1000

    @given(
        counts=st.lists(st.integers(0, 50), min_size=1, max_size=200),
        parts=st.integers(1, 16),
    )
    @settings(max_examples=150, deadline=None)
    def test_balance_within_one_row_of_ideal(self, counts, parts):
        """Every partition's nnz stays within the heaviest single row of
        the ideal share — the greedy split's quality guarantee."""
        ptr = row_ptr_from_counts(counts)
        sizes = nnz_per_partition(ptr, equal_nnz_row_bounds(ptr, parts))
        ideal = sum(counts) / parts
        heaviest = max(counts)
        assert sizes.max() <= ideal + heaviest
        assert sizes.min() >= 0


class TestEqualRows:
    def test_even_split(self):
        assert list(equal_rows_bounds(10, 2)) == [0, 5, 10]

    def test_ragged_split_covers(self):
        b = equal_rows_bounds(10, 3)
        assert b[0] == 0 and b[-1] == 10

    def test_rejects_nonpositive(self):
        with pytest.raises(ShapeError):
            equal_rows_bounds(10, 0)

    @given(
        n_rows=st.integers(0, 5000),
        parts=st.integers(1, 64),
    )
    @settings(max_examples=150, deadline=None)
    def test_properties(self, n_rows, parts):
        """Monotone non-decreasing, cover all rows, and row counts are
        balanced to within one row."""
        bounds = equal_rows_bounds(n_rows, parts)
        assert len(bounds) == parts + 1
        assert bounds[0] == 0
        assert bounds[-1] == n_rows
        widths = np.diff(bounds)
        assert np.all(widths >= 0)
        if n_rows:
            assert widths.max() - widths.min() <= 1


class TestVblock:
    def test_width_from_spm(self):
        assert vblock_width(8192, 1) == 8192
        assert vblock_width(8192, 8) == 1024

    def test_width_at_least_one(self):
        assert vblock_width(4, 8) == 1

    def test_rejects_nonpositive_spm(self):
        with pytest.raises(ShapeError):
            vblock_width(0, 1)


class TestTwoLevel:
    def test_structure(self, medium_coo):
        part = build_ip_partitions(medium_coo.row_extents(), 4, 8)
        assert len(part.pe_bounds) == 4
        for t in range(4):
            lo, hi = part.tile_bounds[t], part.tile_bounds[t + 1]
            b = part.pe_bounds[t]
            assert b[0] == lo and b[-1] == hi
            assert np.all(np.diff(b) >= 0)

    def test_balanced_beats_naive_on_skew(self, powerlaw_coo):
        ptr = powerlaw_coo.row_extents()
        bal = build_ip_partitions(ptr, 2, 8, balanced=True)
        naive = build_ip_partitions(ptr, 2, 8, balanced=False)

        def worst(part):
            w = 0
            for t in range(2):
                sizes = nnz_per_partition(ptr, part.pe_bounds[t])
                w = max(w, int(sizes.max()))
            return w

        assert worst(bal) <= worst(naive)

    def test_pe_row_range(self, medium_coo):
        part = build_ip_partitions(medium_coo.row_extents(), 2, 4)
        lo, hi = part.pe_row_range(1, 3)
        assert lo == part.pe_bounds[1][3]
        assert hi == part.pe_bounds[1][4]
