"""User-defined semirings must run unchanged through both kernels.

The paper's programmability claim: new algorithms are just new
Matrix_Op/Vector_Op pairs.  These tests drive a max-min (widest-path)
semiring and a counting semiring through IP and OP.
"""

import numpy as np
import pytest

from repro.formats import COOMatrix, CSCMatrix, SparseVector
from repro.hardware import Geometry, HWMode
from repro.spmv import Semiring, inner_product, outer_product, reference_spmv

GEOM = Geometry(2, 4)


def widest() -> Semiring:
    def combine(a, v_src, v_dst, src_idx, dst_idx):
        return np.minimum(v_src, a)

    return Semiring(
        "widest", combine, np.maximum, 0.0, carry_output=True, absent=0.0
    )


def counting() -> Semiring:
    """Counts contributing in-edges (combine ignores values)."""

    def combine(a, v_src, v_dst, src_idx, dst_idx):
        return np.ones_like(np.asarray(a, dtype=np.float64))

    return Semiring("count", combine, np.add, 0.0)


@pytest.fixture
def setting(rng):
    dense = (rng.random((30, 30)) < 0.2) * rng.uniform(1.0, 9.0, (30, 30))
    coo = COOMatrix.from_dense(dense)
    csc = CSCMatrix.from_coo(coo)
    idx = rng.choice(30, 8, replace=False)
    sv = SparseVector(30, idx, rng.uniform(1.0, 5.0, 8))
    return dense, coo, csc, sv


class TestWidestPath:
    def test_ip_op_oracle_agree(self, setting, rng):
        dense, coo, csc, sv = setting
        sr = widest()
        current = rng.uniform(0.0, 2.0, 30)
        dv = np.zeros(30)
        dv[sv.indices] = sv.values
        ip = inner_product(coo, dv, sr, GEOM, HWMode.SC, current=current)
        op = outer_product(
            csc, sv, sr, GEOM, HWMode.PC, current=current, exact=True
        )
        ref = reference_spmv(dense, dv, sr, current)
        assert np.allclose(ip.values, op.values)
        assert np.allclose(ip.values, ref)
        # max-with-carry never decreases anything
        assert np.all(ip.values >= current - 1e-12)


class TestCounting:
    def test_counts_in_edges_from_frontier(self, setting):
        dense, coo, csc, sv = setting
        sr = counting()
        dv = np.zeros(30)
        dv[sv.indices] = sv.values
        ip = inner_product(coo, dv, sr, GEOM, HWMode.SCS)
        op = outer_product(csc, sv, sr, GEOM, HWMode.PS, exact=True)
        expected = (dense[:, sv.indices] != 0).sum(axis=1).astype(float)
        assert np.allclose(ip.values, expected)
        assert np.allclose(op.values, expected)
