"""SpMVResult container tests."""

import numpy as np
import pytest

from repro.formats import COOMatrix
from repro.hardware import Geometry, HWMode
from repro.spmv import inner_product, spmv_semiring


@pytest.fixture
def result(small_coo, rng):
    v = rng.random(small_coo.n_cols)
    return inner_product(small_coo, v, spmv_semiring(), Geometry(2, 2), HWMode.SC)


class TestResult:
    def test_n(self, result, small_coo):
        assert result.n == small_coo.n_rows

    def test_touched_count(self, result):
        assert result.touched_count == int(result.touched.sum())

    def test_dense_output(self, result):
        dv = result.dense_output()
        assert np.array_equal(dv.data, result.values)

    def test_touched_sparse_round_trip(self, result):
        sv = result.touched_sparse()
        assert sv.nnz == result.touched_count
        dense = sv.to_dense()
        assert np.allclose(dense[result.touched], result.values[result.touched])

    def test_semiring_attached(self, result):
        assert result.semiring.name == "SpMV"
