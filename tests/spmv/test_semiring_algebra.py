"""Algebraic properties the kernels silently rely on.

Both kernels scatter contributions in arbitrary per-PE order, so every
shipped reduce must be associative and commutative with the declared
identity; the IP activity skip relies on ``absent`` being absorbing
under combine-then-reduce.  Hypothesis checks all of it.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spmv import bfs_semiring, pagerank_semiring, spmv_semiring, sssp_semiring

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)

SEMIRINGS = {
    "spmv": spmv_semiring(),
    "bfs": bfs_semiring(),
    "sssp": sssp_semiring(),
    "pr": pagerank_semiring(np.ones(8)),
}


class TestReduceAlgebra:
    @given(a=finite, b=finite, c=finite)
    @settings(max_examples=100, deadline=None)
    def test_associative_commutative(self, a, b, c):
        for name, sr in SEMIRINGS.items():
            op = sr.reduce_op
            left = op(op(a, b), c)
            right = op(a, op(b, c))
            assert np.isclose(left, right, rtol=1e-9, atol=1e-6), name
            assert op(a, b) == op(b, a), name

    @given(a=finite)
    @settings(max_examples=100, deadline=None)
    def test_identity_is_neutral(self, a):
        for name, sr in SEMIRINGS.items():
            assert sr.reduce_op(a, sr.identity) == a, name


class TestAbsentAbsorbs:
    @given(weight=st.floats(0.1, 100.0), order=st.permutations([0, 1, 2]))
    @settings(max_examples=60, deadline=None)
    def test_inactive_source_contributes_identity(self, weight, order):
        """Reducing an inactive source's contribution changes nothing
        (this is why the IP kernel may skip absent entries)."""
        for name, sr in SEMIRINGS.items():
            if sr.value_words != 1:
                continue
            contribs = []
            values = [1.5, sr.absent, 3.0]
            for i in order:
                v = values[i]
                c = sr.combine(
                    np.asarray([weight]),
                    np.asarray([v]),
                    None,
                    np.asarray([0]),
                    np.asarray([0]),
                )[0]
                contribs.append((v, c))
            full = sr.identity
            skipped = sr.identity
            for v, c in contribs:
                full = sr.reduce_op(full, c)
                if v != sr.absent:
                    skipped = sr.reduce_op(skipped, c)
            assert np.isclose(full, skipped, rtol=1e-9, atol=1e-9) or (
                np.isinf(full) and np.isinf(skipped)
            ), name
