"""Property-based equivalence: IP == OP == loop oracle for any semiring.

This is the invariant the whole framework rests on — software
reconfiguration may never change results, only cost.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats import COOMatrix, CSCMatrix, SparseVector
from repro.hardware import Geometry, HWMode
from repro.spmv import (
    bfs_semiring,
    inner_product,
    outer_product,
    reference_spmv,
    spmv_semiring,
    scipy_spmv,
    sssp_semiring,
)

GEOM = Geometry(2, 4)


@st.composite
def matrix_and_frontier(draw):
    n_rows = draw(st.integers(2, 24))
    n_cols = draw(st.integers(2, 24))
    density = draw(st.floats(0.0, 0.4))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    dense = (rng.random((n_rows, n_cols)) < density) * rng.uniform(
        0.5, 3.0, (n_rows, n_cols)
    )
    v_density = draw(st.floats(0.0, 1.0))
    nnz_v = int(round(v_density * n_cols))
    idx = rng.choice(n_cols, size=nnz_v, replace=False)
    vals = rng.uniform(0.5, 2.0, size=nnz_v)
    return dense, idx, vals, seed


def run_both(dense, idx, vals, semiring, current=None):
    coo = COOMatrix.from_dense(dense)
    csc = CSCMatrix.from_coo(coo)
    n = dense.shape[1]
    sv = SparseVector(n, idx, vals)
    dv = np.full(n, semiring.absent)
    dv[sv.indices] = sv.values
    ip = inner_product(coo, dv, semiring, GEOM, HWMode.SC, current=current)
    op = outer_product(
        csc, sv, semiring, GEOM, HWMode.PC, current=current, exact=True
    )
    return ip, op, dv


class TestIPOPEquivalence:
    @given(matrix_and_frontier())
    @settings(max_examples=60, deadline=None)
    def test_spmv_semiring(self, mv):
        dense, idx, vals, _ = mv
        sr = spmv_semiring()
        ip, op, dv = run_both(dense, idx, vals, sr)
        assert np.allclose(ip.values, op.values)
        assert np.allclose(ip.values, reference_spmv(dense, dv, sr))
        assert np.array_equal(ip.touched, op.touched)

    @given(matrix_and_frontier())
    @settings(max_examples=40, deadline=None)
    def test_bfs_semiring(self, mv):
        dense, idx, vals, _ = mv
        sr = bfs_semiring()
        ip, op, dv = run_both(dense, idx, vals, sr)
        assert np.allclose(ip.values, op.values, equal_nan=True)
        assert np.allclose(
            ip.values, reference_spmv(dense, dv, sr), equal_nan=True
        )

    @given(matrix_and_frontier())
    @settings(max_examples=40, deadline=None)
    def test_sssp_semiring(self, mv):
        dense, idx, vals, seed = mv
        sr = sssp_semiring()
        rng = np.random.default_rng(seed + 1)
        current = rng.uniform(0.0, 10.0, dense.shape[0])
        ip, op, dv = run_both(dense, idx, vals, sr, current=current)
        assert np.allclose(ip.values, op.values)
        assert np.allclose(ip.values, reference_spmv(dense, dv, sr, current))
        # relaxation never increases a distance
        assert np.all(ip.values <= current + 1e-12)

    @given(matrix_and_frontier())
    @settings(max_examples=40, deadline=None)
    def test_scipy_cross_check(self, mv):
        dense, idx, vals, _ = mv
        coo = COOMatrix.from_dense(dense)
        sv = SparseVector(dense.shape[1], idx, vals)
        ip = inner_product(
            coo, sv.to_dense(), spmv_semiring(), GEOM, HWMode.SCS
        )
        assert np.allclose(ip.values, scipy_spmv(coo, sv.to_dense()))


class TestResultInvariants:
    @given(matrix_and_frontier())
    @settings(max_examples=40, deadline=None)
    def test_untouched_rows_keep_identity(self, mv):
        dense, idx, vals, _ = mv
        sr = spmv_semiring()
        ip, op, _ = run_both(dense, idx, vals, sr)
        assert np.allclose(ip.values[~ip.touched], sr.identity)

    @given(matrix_and_frontier())
    @settings(max_examples=40, deadline=None)
    def test_profiles_price_positive(self, mv):
        from repro.hardware import TransmuterSystem

        dense, idx, vals, _ = mv
        ip, op, _ = run_both(dense, idx, vals, spmv_semiring())
        system = TransmuterSystem(GEOM)
        for res in (ip, op):
            rep = system.evaluate_without_switching(res.profile)
            assert rep.cycles > 0
            assert rep.energy_j > 0
