"""Merge-heap tests (the OP sorted list), incl. property-based."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.spmv import MergeHeap


class TestBasics:
    def test_pop_order(self):
        h = MergeHeap()
        for k in [5, 1, 3, 2, 4]:
            h.push(k, k * 10)
        assert [h.pop()[0] for _ in range(5)] == [1, 2, 3, 4, 5]

    def test_cursor_travels_with_key(self):
        h = MergeHeap()
        h.push(7, 70)
        h.push(3, 30)
        key, cur = h.pop()
        assert (key, cur) == (3, 30)

    def test_peek_does_not_remove(self):
        h = MergeHeap()
        h.push(2, 0)
        assert h.peek()[0] == 2
        assert len(h) == 1

    def test_replace_top(self):
        h = MergeHeap()
        for k in [4, 2, 6]:
            h.push(k, 0)
        old = h.replace_top(5, 1)
        assert old[0] == 2
        assert h.peek()[0] == 4
        assert h.check_invariant()

    def test_empty_operations_raise(self):
        h = MergeHeap()
        with pytest.raises(SimulationError):
            h.pop()
        with pytest.raises(SimulationError):
            h.peek()
        with pytest.raises(SimulationError):
            h.replace_top(1, 0)

    def test_duplicate_keys_allowed(self):
        h = MergeHeap()
        for _ in range(4):
            h.push(7, 0)
        assert [h.pop()[0] for _ in range(4)] == [7, 7, 7, 7]


class TestInstrumentation:
    def test_counts_accumulate(self):
        h = MergeHeap()
        for k in range(16):
            h.push(k, k)
        assert h.accesses == h.reads + h.writes
        assert h.reads > 0 and h.writes > 0
        assert h.max_size == 16
        assert h.words == 32

    def test_trace_recording(self):
        h = MergeHeap(record_trace=True)
        h.push(3, 0)
        h.push(1, 1)
        h.pop()
        offs, wr = h.trace_arrays()
        assert len(offs) == len(wr)
        assert len(offs) > 0
        assert offs.max() < 2 * h.max_size

    def test_trace_requires_flag(self):
        with pytest.raises(SimulationError):
            MergeHeap().trace_arrays()

    def test_sink_receives_every_access(self):
        events = []
        h = MergeHeap(sink=lambda off, wr: events.append((off, wr)))
        h.push(2, 0)
        h.push(1, 1)
        h.pop()
        assert len(events) == h.accesses


class TestProperties:
    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=200))
    @settings(max_examples=150, deadline=None)
    def test_heapsort(self, keys):
        h = MergeHeap()
        for i, k in enumerate(keys):
            h.push(k, i)
            assert h.check_invariant()
        out = [h.pop()[0] for _ in range(len(keys))]
        assert out == sorted(keys)

    @given(
        st.lists(st.integers(0, 100), min_size=2, max_size=50),
        st.lists(st.integers(0, 100), min_size=1, max_size=50),
    )
    @settings(max_examples=100, deadline=None)
    def test_replace_top_preserves_invariant(self, initial, replacements):
        h = MergeHeap()
        for i, k in enumerate(initial):
            h.push(k, i)
        for r in replacements:
            h.replace_top(r, 0)
            assert h.check_invariant()
        out = [h.pop()[0] for _ in range(len(h))]
        assert out == sorted(out)
