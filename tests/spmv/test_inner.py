"""Inner-product kernel tests: functional result + profile shape."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ShapeError
from repro.formats import COOMatrix
from repro.hardware import Geometry, HWMode, Region
from repro.spmv import (
    bfs_semiring,
    cf_semiring,
    inner_product,
    reference_spmv,
    spmv_semiring,
    sssp_semiring,
)


@pytest.fixture
def geom():
    return Geometry(2, 4)


class TestFunctional:
    def test_matches_dense_product(self, small_dense, small_coo, geom, rng):
        v = rng.random(small_coo.n_cols)
        res = inner_product(small_coo, v, spmv_semiring(), geom, HWMode.SC)
        assert np.allclose(res.values, small_dense @ v)

    def test_matches_reference_oracle(self, small_dense, small_coo, geom, rng):
        v = (rng.random(small_coo.n_cols) < 0.3) * rng.random(small_coo.n_cols)
        sr = spmv_semiring()
        res = inner_product(small_coo, v, sr, geom, HWMode.SCS)
        assert np.allclose(res.values, reference_spmv(small_dense, v, sr))

    def test_min_semiring(self, small_dense, small_coo, geom):
        v = np.full(small_coo.n_cols, np.inf)
        v[3] = 0.0
        sr = bfs_semiring()
        res = inner_product(small_coo, v, sr, geom, HWMode.SC)
        assert np.allclose(
            res.values, reference_spmv(small_dense, v, sr), equal_nan=True
        )

    def test_carry_semiring(self, small_dense, small_coo, geom, rng):
        sr = sssp_semiring()
        cur = rng.random(small_coo.n_rows) * 10
        v = np.full(small_coo.n_cols, np.inf)
        v[:5] = rng.random(5)
        res = inner_product(small_coo, v, sr, geom, HWMode.SC, current=cur)
        assert np.allclose(res.values, reference_spmv(small_dense, v, sr, cur))
        assert np.all(res.values <= cur + 1e-12)

    def test_vector_valued_cf(self, small_dense, small_coo, geom, rng):
        sr = cf_semiring(k=3)
        F = rng.normal(size=(small_coo.n_cols, 3))
        res = inner_product(small_coo, F, sr, geom, HWMode.SC, current=F)
        assert np.allclose(res.values, reference_spmv(small_dense, F, sr, F))

    def test_touched_mask(self, geom):
        coo = COOMatrix(4, 4, [0, 2], [1, 3], [1.0, 1.0])
        v = np.asarray([0.0, 5.0, 0.0, 0.0])
        res = inner_product(coo, v, spmv_semiring(), geom, HWMode.SC)
        assert list(res.touched) == [True, False, False, False]

    def test_inactive_sources_skipped(self, geom):
        coo = COOMatrix(2, 2, [0, 1], [0, 1], [1.0, 1.0])
        v = np.asarray([0.0, 2.0])
        res = inner_product(coo, v, spmv_semiring(), geom, HWMode.SC)
        assert res.profile.meta["active_entries"] == 1


class TestValidation:
    def test_rejects_op_modes(self, small_coo, geom):
        with pytest.raises(ConfigurationError):
            inner_product(
                small_coo, np.ones(small_coo.n_cols), spmv_semiring(), geom, HWMode.PC
            )

    def test_rejects_wrong_length(self, small_coo, geom):
        with pytest.raises(ShapeError):
            inner_product(small_coo, np.ones(3), spmv_semiring(), geom, HWMode.SC)

    def test_rejects_shape_semiring_mismatch(self, small_coo, geom):
        with pytest.raises(ShapeError):
            inner_product(
                small_coo,
                np.ones((small_coo.n_cols, 2)),
                spmv_semiring(),
                geom,
                HWMode.SC,
            )

    def test_trace_rejects_vector_values(self, small_coo, geom, rng):
        sr = cf_semiring(k=2)
        F = rng.normal(size=(small_coo.n_cols, 2))
        with pytest.raises(ConfigurationError):
            inner_product(
                small_coo, F, sr, geom, HWMode.SC, current=F, with_trace=True
            )


class TestProfile:
    def test_profile_shape(self, medium_coo, geom, rng):
        v = rng.random(medium_coo.n_cols)
        res = inner_product(medium_coo, v, spmv_semiring(), geom, HWMode.SC)
        p = res.profile
        assert p.algorithm == "ip"
        assert p.n_tiles == geom.tiles
        assert all(len(t.pes) == geom.pes_per_tile for t in p.tiles)

    def test_matrix_stream_covers_all_entries(self, medium_coo, geom, rng):
        v = rng.random(medium_coo.n_cols)
        res = inner_product(medium_coo, v, spmv_semiring(), geom, HWMode.SC)
        total = sum(
            pe.stream(Region.MATRIX).count
            for t in res.profile.tiles
            for pe in t.pes
        )
        assert total == 3 * medium_coo.nnz

    def test_scs_puts_vector_in_spm(self, medium_coo, geom, rng):
        v = rng.random(medium_coo.n_cols)
        res = inner_product(medium_coo, v, spmv_semiring(), geom, HWMode.SCS)
        s = res.profile.tiles[0].pes[0].stream(Region.VECTOR_IN)
        assert s.in_spm
        assert res.profile.tiles[0].spm_fill_words == medium_coo.n_cols

    def test_sc_does_not_fill_spm(self, medium_coo, geom, rng):
        v = rng.random(medium_coo.n_cols)
        res = inner_product(medium_coo, v, spmv_semiring(), geom, HWMode.SC)
        assert res.profile.tiles[0].spm_fill_words == 0.0

    def test_balanced_partition_evens_work(self, powerlaw_coo, geom, rng):
        v = rng.random(powerlaw_coo.n_cols)
        bal = inner_product(
            powerlaw_coo, v, spmv_semiring(), geom, HWMode.SC, balanced=True
        )
        naive = inner_product(
            powerlaw_coo, v, spmv_semiring(), geom, HWMode.SC, balanced=False
        )

        def worst(profile):
            return max(
                pe.stream(Region.MATRIX).count
                for t in profile.tiles
                for pe in t.pes
            )

        assert worst(bal.profile) <= worst(naive.profile)

    def test_trace_lengths_match_streams(self, small_coo, geom, rng):
        v = rng.random(small_coo.n_cols)
        res = inner_product(
            small_coo, v, spmv_semiring(), geom, HWMode.SC, with_trace=True
        )
        for t in res.profile.tiles:
            for pe in t.pes:
                assert pe.trace is not None
                assert pe.trace.n_accesses == pytest.approx(
                    pe.total_accesses, abs=0
                )
