"""Property-based runtime invariants over random density sequences."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CoSparseRuntime, SpMVOperand
from repro.spmv import spmv_semiring
from repro.workloads import random_frontier, uniform_random

_OPERAND = SpMVOperand(uniform_random(2048, nnz=30_000, seed=55))


@given(
    densities=st.lists(
        st.sampled_from([0.0, 0.001, 0.01, 0.1, 0.9]), min_size=1, max_size=6
    ),
    seed=st.integers(0, 1000),
)
@settings(max_examples=40, deadline=None)
def test_log_invariants(densities, seed):
    rt = CoSparseRuntime(_OPERAND, "2x4")
    sr = spmv_semiring()
    for i, d in enumerate(densities):
        rt.spmv(random_frontier(_OPERAND.info.n_cols, d, seed=seed + i), sr)
    log = rt.log
    assert len(log) == len(densities)
    # switch counts equal the transitions in the recorded sequences
    algos = [r.algorithm for r in log]
    assert log.sw_switches == sum(
        a != b for a, b in zip(algos[:-1], algos[1:])
    )
    modes = [r.hw_mode for r in log]
    assert log.hw_switches == sum(
        a is not b for a, b in zip(modes[:-1], modes[1:])
    )
    # totals decompose over records
    assert log.total_cycles == pytest.approx(
        sum(r.total_cycles for r in log)
    )
    # density was recorded faithfully
    for r, d in zip(log, densities):
        assert r.vector_density == pytest.approx(d, abs=1 / 2048 + 1e-9)


@given(seed=st.integers(0, 500))
@settings(max_examples=20, deadline=None)
def test_policies_agree_functionally(seed):
    sr = spmv_semiring()
    f = random_frontier(_OPERAND.info.n_cols, 0.02, seed=seed)
    values = {}
    for policy in ("tree", "oracle", "static", "adaptive"):
        rt = CoSparseRuntime(_OPERAND, "2x4", policy=policy)
        values[policy] = rt.spmv(f, sr).values
    base = values["tree"]
    for policy, v in values.items():
        assert np.allclose(v, base), policy
