"""Runtime-level batched SpMV: grouping, records, and bit-identity.

``spmv_batch`` must be indistinguishable — values, touched masks, and
per-column IterationRecords — from issuing K sequential ``spmv`` calls
in the batch's group-execution order.
"""

import numpy as np
import pytest

from repro.core import CoSparseRuntime, SpMVOperand
from repro.errors import ConfigurationError
from repro.formats import MultiVector, SparseVector
from repro.hardware import HWMode
from repro.spmv import (
    bfs_semiring,
    cf_semiring,
    pagerank_semiring,
    spmv_semiring,
    sssp_semiring,
)
from repro.workloads import random_frontier


@pytest.fixture
def operand(medium_coo):
    return SpMVOperand(medium_coo)


def _mixed_columns(n, rng):
    """Frontiers spanning the IP/OP decision boundary, mixed natives."""
    cols = [
        random_frontier(n, 0.001, seed=11),          # sparse -> OP
        rng.uniform(0.5, 1.5, n),                    # fully dense -> IP
        random_frontier(n, 0.003, seed=12),          # sparse -> OP
        np.where(rng.random(n) < 0.6, 1.0, 0.0),     # dense-ish -> IP
        SparseVector.empty(n),                       # empty
    ]
    return cols


def _run_sequential_in_group_order(operand, batch_rt, cols, semiring,
                                   currents=None, **rt_kw):
    """Replay the batch's group order through a fresh sequential runtime."""
    seq_rt = CoSparseRuntime(operand, "2x8", **rt_kw)
    order = [r.batch_column for r in batch_rt.log.records]
    results = {}
    for j in order:
        cur = None if currents is None else currents[j]
        results[j] = seq_rt.spmv(cols[j], semiring, current=cur)
    return seq_rt, order, results


def _assert_logs_identical(batch_rt, seq_rt):
    assert len(batch_rt.log) == len(seq_rt.log)
    for rb, rs in zip(batch_rt.log.records, seq_rt.log.records):
        assert rb.algorithm == rs.algorithm
        assert rb.hw_mode is rs.hw_mode
        assert rb.vector_density == rs.vector_density
        assert rb.report.cycles == rs.report.cycles
        assert rb.report.reconfig_cycles == rs.report.reconfig_cycles
        assert rb.conversion == rs.conversion
        assert rb.conversion_cycles == rs.conversion_cycles
        assert rb.sw_switched == rs.sw_switched
        assert rb.hw_switched == rs.hw_switched


class TestBitIdentity:
    @pytest.mark.parametrize("policy", ["tree", "oracle", "static"])
    def test_matches_sequential_group_order(
        self, operand, medium_coo, rng, policy
    ):
        sr = spmv_semiring()
        cols = _mixed_columns(medium_coo.n_cols, rng)
        batch_rt = CoSparseRuntime(operand, "2x8", policy=policy)
        results = batch_rt.spmv_batch(cols, sr)
        seq_rt, order, seq_results = _run_sequential_in_group_order(
            operand, batch_rt, cols, sr, policy=policy
        )
        assert sorted(order) == list(range(len(cols)))
        for j in order:
            assert np.array_equal(results[j].values, seq_results[j].values)
            assert np.array_equal(results[j].touched, seq_results[j].touched)
        _assert_logs_identical(batch_rt, seq_rt)

    def test_min_semiring_and_currents(self, operand, medium_coo, rng):
        sr = sssp_semiring()
        n = medium_coo.n_cols
        cols = [random_frontier(n, 0.002, seed=21), random_frontier(n, 0.4, seed=22)]
        currents = [rng.uniform(1.0, 8.0, n), rng.uniform(1.0, 8.0, n)]
        batch_rt = CoSparseRuntime(operand, "2x8")
        mv = MultiVector(cols, absent=np.inf)
        results = batch_rt.spmv_batch(mv, sr, currents=currents)
        seq_rt, order, seq_results = _run_sequential_in_group_order(
            operand, batch_rt, cols, sr, currents=currents
        )
        for j in order:
            assert np.array_equal(results[j].values, seq_results[j].values)
        _assert_logs_identical(batch_rt, seq_rt)

    def test_additive_vector_op_semiring(self, operand, medium_coo, rng):
        degrees = np.maximum(
            np.bincount(medium_coo.rows, minlength=medium_coo.n_rows), 1
        )
        sr = pagerank_semiring(degrees)
        n = medium_coo.n_cols
        cols = [rng.random(n), rng.random(n)]
        batch_rt = CoSparseRuntime(operand, "2x8")
        results = batch_rt.spmv_batch(cols, sr)
        seq_rt, order, seq_results = _run_sequential_in_group_order(
            operand, batch_rt, cols, sr
        )
        for j in order:
            assert np.array_equal(results[j].values, seq_results[j].values)
        _assert_logs_identical(batch_rt, seq_rt)

    def test_all_dense_batch_single_group(self, operand, medium_coo, rng):
        sr = spmv_semiring()
        cols = [rng.uniform(0.5, 1.5, medium_coo.n_cols) for _ in range(3)]
        rt = CoSparseRuntime(operand, "2x8")
        rt.spmv_batch(cols, sr)
        assert len({(r.algorithm, r.hw_mode) for r in rt.log}) == 1
        # Same-config followers ride the group: after the initial mode
        # configuration, no further switches are charged.
        followers = [r.report.reconfig_cycles for r in rt.log.records[1:]]
        assert followers == [0.0, 0.0]

    def test_switch_charged_once_per_group(self, operand, medium_coo, rng):
        sr = spmv_semiring()
        n = medium_coo.n_cols
        cols = [
            random_frontier(n, 0.001, seed=31),
            rng.uniform(0.5, 1.5, n),
            random_frontier(n, 0.001, seed=32),
            rng.uniform(0.5, 1.5, n),
        ]
        rt = CoSparseRuntime(operand, "2x8")
        rt.spmv_batch(cols, sr)
        recs = rt.log.records
        modes = [r.hw_mode for r in recs]
        assert len(set(modes)) == 2  # two groups actually formed
        # Grouping reorders execution so each config runs contiguously:
        # only the first column of each group pays the mode switch (the
        # leading one covers the initial configuration).
        switches = [r.report.reconfig_cycles > 0 for r in recs]
        assert switches == [True, False, True, False]


class TestBatchBookkeeping:
    def test_batch_provenance_fields(self, operand, medium_coo, rng):
        sr = spmv_semiring()
        rt = CoSparseRuntime(operand, "2x8")
        rt.spmv(random_frontier(medium_coo.n_cols, 0.01, seed=41), sr)
        assert rt.last_record.batch_id is None
        assert rt.last_record.batch_column is None
        rt.spmv_batch([rng.random(medium_coo.n_cols) for _ in range(2)], sr)
        batch_recs = rt.log.records[1:]
        assert [r.batch_id for r in batch_recs] == [0, 0]
        assert sorted(r.batch_column for r in batch_recs) == [0, 1]
        rt.spmv_batch([rng.random(medium_coo.n_cols)], sr)
        assert rt.last_record.batch_id == 1
        rt.reset_log()
        assert rt._batch_id == 0

    def test_iteration_numbers_contiguous(self, operand, medium_coo, rng):
        sr = spmv_semiring()
        rt = CoSparseRuntime(operand, "2x8")
        rt.spmv_batch([rng.random(medium_coo.n_cols) for _ in range(3)], sr)
        assert [r.iteration for r in rt.log.records] == [0, 1, 2]

    def test_rejects_trace_vector_semirings_and_bad_absent(
        self, operand, medium_coo, rng
    ):
        rt_trace = CoSparseRuntime(operand, "2x8", with_trace=True)
        with pytest.raises(ConfigurationError):
            rt_trace.spmv_batch([rng.random(medium_coo.n_cols)], spmv_semiring())
        rt = CoSparseRuntime(operand, "2x8")
        with pytest.raises(ConfigurationError):
            rt.spmv_batch([rng.random(medium_coo.n_cols)], cf_semiring())
        mv = MultiVector([rng.random(medium_coo.n_cols)], absent=0.0)
        with pytest.raises(ConfigurationError):
            rt.spmv_batch(mv, bfs_semiring())
        with pytest.raises(ConfigurationError):
            rt.spmv_batch(
                [rng.random(medium_coo.n_cols)],
                spmv_semiring(),
                currents=[None, None],
            )

    def test_currents_as_2d_array(self, operand, medium_coo, rng):
        sr = sssp_semiring()
        n = medium_coo.n_cols
        cols = [random_frontier(n, 0.05, seed=51), random_frontier(n, 0.05, seed=52)]
        cur = rng.uniform(1.0, 5.0, (n, 2))
        mv = MultiVector(cols, absent=np.inf)
        rt = CoSparseRuntime(operand, "2x8")
        results = rt.spmv_batch(mv, sr, currents=cur)
        for q in range(2):
            seq = CoSparseRuntime(operand, "2x8").spmv(
                cols[q], sr, current=cur[:, q]
            )
            assert np.array_equal(results[q].values, seq.values)


class _StubReport:
    def __init__(self, cycles, energy_j):
        self.cycles = cycles
        self.energy_j = energy_j


class TestEnergyObjectiveScoring:
    """The objective="energy" fallback is all-or-nothing per comparison."""

    def test_all_energy_ranks_by_joules(self, operand):
        rt = CoSparseRuntime(operand, "2x8", objective="energy")
        reports = [_StubReport(100.0, 5.0), _StubReport(200.0, 1.0)]
        assert rt._scores(reports) == [5.0, 1.0]

    def test_no_energy_falls_back_to_cycles_uniformly(self, operand):
        rt = CoSparseRuntime(operand, "2x8", objective="energy")
        reports = [_StubReport(100.0, None), _StubReport(200.0, None)]
        assert rt._scores(reports) == [100.0, 200.0]

    def test_mixed_energy_is_a_configuration_error(self, operand):
        rt = CoSparseRuntime(operand, "2x8", objective="energy")
        reports = [_StubReport(100.0, 5.0), _StubReport(200.0, None)]
        with pytest.raises(ConfigurationError):
            rt._scores(reports)

    def test_time_objective_ignores_energy(self, operand):
        rt = CoSparseRuntime(operand, "2x8", objective="time")
        reports = [_StubReport(100.0, 5.0), _StubReport(200.0, None)]
        assert rt._scores(reports) == [100.0, 200.0]

    def test_oracle_energy_objective_end_to_end(self, operand, medium_coo):
        rt = CoSparseRuntime(operand, "2x8", policy="oracle", objective="energy")
        rt.spmv(random_frontier(medium_coo.n_cols, 0.01, seed=61), spmv_semiring())
        rec = rt.last_record
        chosen = rec.report.energy_j
        assert chosen is not None
        assert chosen <= min(a.energy_j for a in rec.alternatives.values()) * 1.05
