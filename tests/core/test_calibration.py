"""Calibration sweep tests (Section III-C methodology)."""

import pytest

from repro.core import (
    DecisionThresholds,
    SweepPoint,
    calibrate_cvd,
    calibrated_thresholds,
    find_crossover_density,
    sweep_op_vs_ip,
)
from repro.hardware import Geometry
from repro.workloads import uniform_random


@pytest.fixture(scope="module")
def calib_matrix():
    # dense enough that OP clearly wins at the sparse end on 2x8
    return uniform_random(16384, nnz=200_000, seed=3)


class TestCrossoverFinder:
    def test_interpolates(self):
        pts = [
            SweepPoint(0.005, 100.0, 25.0),  # OP 4x faster
            SweepPoint(0.02, 100.0, 400.0),  # OP 4x slower
        ]
        cvd = find_crossover_density(pts)
        assert 0.005 < cvd < 0.02
        assert cvd == pytest.approx(0.01, rel=0.05)  # log-symmetric midpoint

    def test_no_crossover_returns_none(self):
        pts = [SweepPoint(0.005, 100.0, 10.0), SweepPoint(0.02, 100.0, 20.0)]
        assert find_crossover_density(pts) is None

    def test_ip_wins_everywhere(self):
        pts = [SweepPoint(0.005, 10.0, 100.0), SweepPoint(0.02, 10.0, 200.0)]
        assert find_crossover_density(pts) == 0.005

    def test_unordered_input_handled(self):
        pts = [
            SweepPoint(0.02, 100.0, 400.0),
            SweepPoint(0.005, 100.0, 25.0),
        ]
        assert find_crossover_density(pts) is not None


class TestSweep:
    def test_speedup_monotone_decreasing(self, calib_matrix):
        pts = sweep_op_vs_ip(
            calib_matrix, Geometry(2, 8), [0.0025, 0.01, 0.04]
        )
        speedups = [p.speedup for p in pts]
        assert speedups[0] > speedups[-1]

    def test_op_wins_at_sparse_end(self, calib_matrix):
        pts = sweep_op_vs_ip(calib_matrix, Geometry(2, 8), [0.001])
        assert pts[0].speedup > 1.0

    def test_point_speedup(self):
        assert SweepPoint(0.1, 10.0, 5.0).speedup == 2.0
        assert SweepPoint(0.1, 10.0, 0.0).speedup == float("inf")


class TestCalibratedThresholds:
    def test_measured_cvd_in_plausible_band(self, calib_matrix):
        cvd = calibrate_cvd(
            calib_matrix,
            Geometry(2, 8),
            densities=(0.0025, 0.005, 0.01, 0.02, 0.04, 0.08, 0.16),
        )
        assert cvd is None or 0.001 < cvd < 0.2

    def test_back_projection(self, calib_matrix):
        t = calibrated_thresholds(
            calib_matrix,
            Geometry(2, 8),
            densities=(0.0025, 0.005, 0.01, 0.02, 0.04, 0.08, 0.16),
        )
        assert isinstance(t, DecisionThresholds)
        assert t.cvd_at_8_pes > 0

    def test_falls_back_to_base_without_crossover(self, calib_matrix):
        base = DecisionThresholds()
        t = calibrated_thresholds(
            calib_matrix, Geometry(2, 8), densities=(1e-5,), base=base
        )
        # single ultra-sparse point: OP wins, no crossover found
        assert t == base
