"""Extension-policy tests: adaptive thresholds and the energy objective."""

import numpy as np
import pytest

from repro.core import CoSparseRuntime, DecisionThresholds
from repro.errors import ConfigurationError
from repro.spmv import spmv_semiring
from repro.workloads import random_frontier, uniform_random


@pytest.fixture(scope="module")
def matrix():
    return uniform_random(16384, nnz=250_000, seed=9)


class TestEnergyObjective:
    def test_rejects_unknown_objective(self, matrix):
        with pytest.raises(ConfigurationError):
            CoSparseRuntime(matrix, "2x8", objective="area")

    def test_energy_oracle_picks_minimum_energy(self, matrix):
        rt = CoSparseRuntime(matrix, "2x8", policy="oracle", objective="energy")
        rt.spmv(random_frontier(matrix.n_cols, 0.01, seed=1), spmv_semiring())
        rec = rt.last_record
        best_alt = min(a.energy_j for a in rec.alternatives.values())
        assert rec.report.energy_j <= best_alt * 1.05

    def test_energy_and_time_agree_on_algorithm(self, matrix):
        """Static power makes energy track time on this substrate, so
        the software choice coincides (hardware modes may tie within a
        couple of per cent and flip)."""
        sr = spmv_semiring()
        for i, d in enumerate((0.002, 0.02, 0.5)):
            f = random_frontier(matrix.n_cols, d, seed=10 + i)
            t = CoSparseRuntime(matrix, "2x8", policy="oracle", objective="time")
            e = CoSparseRuntime(t.operand, "2x8", policy="oracle", objective="energy")
            t.spmv(f, sr)
            e.spmv(f, sr)
            assert t.last_record.algorithm == e.last_record.algorithm


class TestAdaptivePolicy:
    def test_probes_only_near_boundary(self, matrix):
        rt = CoSparseRuntime(matrix, "2x8", policy="adaptive")
        sr = spmv_semiring()
        rt.spmv(random_frontier(matrix.n_cols, 0.9, seed=2), sr)
        assert rt.last_record.alternatives == {}  # far from CVD: no probe
        cvd = rt.tree.crossover_density(rt.operand.info)
        rt.spmv(random_frontier(matrix.n_cols, cvd, seed=3), sr)
        assert len(rt.last_record.alternatives) == 2  # probed both

    def test_wrong_threshold_self_corrects(self, matrix):
        """Start with a CVD estimate that is 8x too high: near-boundary
        probes must pull it down toward the measured crossover."""
        bad = DecisionThresholds(cvd_at_8_pes=0.16, cvd_max=0.5)
        rt = CoSparseRuntime(matrix, "2x8", policy="adaptive", thresholds=bad)
        sr = spmv_semiring()
        start = rt.tree.crossover_density(rt.operand.info)
        rng = np.random.default_rng(4)
        for i in range(6):
            d = start * float(rng.uniform(0.4, 1.2))
            rt.spmv(random_frontier(matrix.n_cols, d, seed=20 + i), sr)
        end = rt.tree.crossover_density(rt.operand.info)
        assert end < start * 0.8

    def test_adaptive_matches_tree_functionally(self, matrix):
        sr = spmv_semiring()
        f = random_frontier(matrix.n_cols, 0.01, seed=5)
        a = CoSparseRuntime(matrix, "2x8", policy="adaptive").spmv(f, sr)
        b = CoSparseRuntime(matrix, "2x8", policy="tree").spmv(f, sr)
        assert np.allclose(a.values, b.values)


class TestCVDNudge:
    """The probe-outcome nudge of the CVD threshold (extension feature)."""

    def _probe_once(self, rt, density, seed):
        sr = spmv_semiring()
        before = rt.tree.thresholds.cvd_at_8_pes
        rt.spmv(random_frontier(rt.operand.coo.n_cols, density, seed=seed), sr)
        probed = len(rt.last_record.alternatives) == 2
        return before, rt.tree.thresholds.cvd_at_8_pes, probed

    def test_threshold_moves_toward_observed_boundary(self, matrix):
        """With an 8x-too-high CVD estimate, densities between the true
        and estimated crossover make the tree pick OP while pricing
        favours IP — each such probe must pull the estimate down."""
        bad = DecisionThresholds(cvd_at_8_pes=0.16, cvd_max=0.5)
        rt = CoSparseRuntime(matrix, "2x8", policy="adaptive", thresholds=bad)
        cvd = rt.tree.crossover_density(rt.operand.info)
        moved = 0
        for i in range(4):
            before, after, probed = self._probe_once(rt, cvd * 0.7, 40 + i)
            assert probed
            assert after <= before  # never moves away from the boundary
            moved += after < before
            cvd = rt.tree.crossover_density(rt.operand.info)
        assert moved >= 1

    def test_threshold_clamped_to_bounds(self, matrix):
        """A boundary below ``cvd_min`` keeps nudging the estimate down
        until the clamp engages; it never leaves [cvd_min, cvd_max]."""
        bad = DecisionThresholds(cvd_at_8_pes=0.16, cvd_min=0.05, cvd_max=0.5)
        rt = CoSparseRuntime(matrix, "2x8", policy="adaptive", thresholds=bad)
        rng = np.random.default_rng(8)
        for i in range(10):
            cvd = rt.tree.crossover_density(rt.operand.info)
            d = cvd * float(rng.uniform(0.5, 0.95))
            self._probe_once(rt, d, 60 + i)
            t = rt.tree.thresholds
            assert t.cvd_min <= t.cvd_at_8_pes <= t.cvd_max
        # the true crossover (~0.02 here) sits below cvd_min, so the
        # estimate must have been driven onto the clamp
        assert rt.tree.thresholds.cvd_at_8_pes == pytest.approx(0.05)

    def test_profile_only_probes_price_like_executed_kernels(self, matrix):
        """The nudge decision depends only on the candidates' reports;
        profile-only probes must produce the same reports as fully
        executed kernels, so adaptive decisions are unchanged."""
        bad = DecisionThresholds(cvd_at_8_pes=0.16, cvd_max=0.5)
        rt = CoSparseRuntime(matrix, "2x8", policy="adaptive", thresholds=bad)
        sr = spmv_semiring()
        cvd = rt.tree.crossover_density(rt.operand.info)
        f = random_frontier(matrix.n_cols, cvd * 0.7, seed=90)
        rt.spmv(f, sr)
        rec = rt.last_record
        assert len(rec.alternatives) == 2
        info = rt.operand.info
        density = rt.frontier_density(f, sr)
        candidates = [
            ("ip", rt.tree.hardware_ip(info, density)),
            ("op", rt.tree.hardware_op(info, density)),
        ]
        for algo, mode in candidates:
            result, _cost = rt._run_kernel(algo, mode, f, sr, None)
            assert result.executed
            report = rt.system.evaluate_without_switching(result.profile)
            priced = rec.alternatives[f"{algo.upper()}/{mode.label}"]
            assert report.cycles == pytest.approx(priced.cycles)
