"""Profile-only pricing: decoupled execution, reuse, and the counting test.

The oracle policy prices all four (algorithm, mode) candidates; pricing
needs only the :class:`KernelProfile`, so the probes run with
``profile_only=True`` and exactly one functional kernel executes per
``spmv()`` invocation (this pins the fix for the historical
double-execution bug, where the winner was re-run after ``_compare``).
"""

import numpy as np
import pytest

from repro.core import CoSparseRuntime
from repro.errors import ReproError
from repro.formats import CSCMatrix
from repro.graphs import Graph, bfs
from repro.hardware import Geometry, HWMode, TransmuterSystem
from repro.perf import counters as perf_counters
from repro.spmv import inner_product, outer_product, spmv_semiring
from repro.workloads import random_frontier, uniform_random

GEOM = Geometry.parse("2x8")


@pytest.fixture(scope="module")
def matrix():
    return uniform_random(2000, nnz=20_000, seed=42)


@pytest.fixture(autouse=True)
def fresh_counters():
    perf_counters.reset()
    yield
    perf_counters.reset()


class TestKernelProfileOnly:
    def test_ip_profile_matches_executed(self, matrix):
        sr = spmv_semiring()
        f = random_frontier(matrix.n_cols, 0.3, seed=1).to_dense().data
        system = TransmuterSystem(GEOM)
        full = inner_product(matrix, f, sr, GEOM, HWMode.SC)
        probe = inner_product(matrix, f, sr, GEOM, HWMode.SC, profile_only=True)
        assert full.executed and not probe.executed
        r_full = system.evaluate_without_switching(full.profile)
        r_probe = system.evaluate_without_switching(probe.profile)
        assert r_probe.cycles == pytest.approx(r_full.cycles)

    def test_op_profile_matches_executed(self, matrix):
        sr = spmv_semiring()
        csc = CSCMatrix.from_coo(matrix)
        f = random_frontier(matrix.n_cols, 0.01, seed=2)
        system = TransmuterSystem(GEOM)
        full = outer_product(csc, f, sr, GEOM, HWMode.PC)
        probe = outer_product(csc, f, sr, GEOM, HWMode.PC, profile_only=True)
        assert full.executed and not probe.executed
        r_full = system.evaluate_without_switching(full.profile)
        r_probe = system.evaluate_without_switching(probe.profile)
        assert r_probe.cycles == pytest.approx(r_full.cycles)

    def test_op_exact_path_executes_anyway(self, matrix):
        """with_trace forces the element-by-element merge, whose values
        are a by-product — the probe then reports executed."""
        sr = spmv_semiring()
        csc = CSCMatrix.from_coo(matrix)
        f = random_frontier(matrix.n_cols, 0.005, seed=3)
        probe = outer_product(
            csc, f, sr, GEOM, HWMode.PC, profile_only=True, with_trace=True
        )
        assert probe.executed

    def test_profile_only_result_guards_functional_accessors(self, matrix):
        sr = spmv_semiring()
        f = random_frontier(matrix.n_cols, 0.3, seed=4).to_dense().data
        probe = inner_product(matrix, f, sr, GEOM, HWMode.SC, profile_only=True)
        assert probe.values is None and probe.touched is None
        with pytest.raises(ReproError):
            probe.dense_output()
        with pytest.raises(ReproError):
            _ = probe.touched_count


class TestOracleCounting:
    def test_oracle_spmv_executes_exactly_one_kernel(self, matrix):
        rt = CoSparseRuntime(matrix, GEOM, policy="oracle")
        sr = spmv_semiring()
        for i, d in enumerate((0.002, 0.05, 0.5)):
            f = random_frontier(matrix.n_cols, d, seed=10 + i)
            perf_counters.reset()
            result = rt.spmv(f, sr)
            assert result.executed
            assert perf_counters.kernel_executions == 1
            assert perf_counters.kernel_profile_only == 4  # all candidates
            assert len(rt.last_record.alternatives) == 4

    def test_tree_policy_executes_exactly_one_kernel(self, matrix):
        rt = CoSparseRuntime(matrix, GEOM, policy="tree")
        f = random_frontier(matrix.n_cols, 0.01, seed=20)
        rt.spmv(f, spmv_semiring())
        assert perf_counters.kernel_executions == 1
        assert perf_counters.kernel_profile_only == 0

    def test_oracle_matches_tree_functionally(self, matrix):
        sr = spmv_semiring()
        f = random_frontier(matrix.n_cols, 0.01, seed=21)
        a = CoSparseRuntime(matrix, GEOM, policy="oracle").spmv(f, sr)
        b = CoSparseRuntime(matrix, GEOM, policy="tree").spmv(f, sr)
        assert np.allclose(a.values, b.values)

    def test_bfs_execution_count_equals_iterations(self):
        graph = Graph(uniform_random(400, nnz=3000, seed=5, remove_self_loops=True))
        rt = CoSparseRuntime(graph.operand, GEOM, policy="oracle")
        run = bfs(graph, 0, runtime=rt)
        assert perf_counters.kernel_executions == len(run.log)

    def test_oracle_with_trace_reuses_executed_probe(self):
        """Trace-fidelity oracle: the OP probes must execute (the exact
        merge generates the traces), and a winning executed probe is
        reused rather than re-run — never more than 3 functional runs,
        and only 1 when an OP candidate wins."""
        coo = uniform_random(300, nnz=2500, seed=6)
        rt = CoSparseRuntime(
            coo, "2x2", policy="oracle", fidelity="trace", with_trace=True
        )
        f = random_frontier(coo.n_cols, 0.01, seed=7)
        result = rt.spmv(f, spmv_semiring())
        assert result.executed
        ran_ip = rt.last_record.algorithm == "ip"
        assert perf_counters.kernel_executions == (3 if ran_ip else 2)


class TestConversionMemoization:
    def test_oracle_converts_each_representation_once(self, matrix):
        """Four candidates, two representations, one conversion each."""
        rt = CoSparseRuntime(matrix, GEOM, policy="oracle")
        sr = spmv_semiring()
        f = random_frontier(matrix.n_cols, 0.05, seed=30)  # sparse input
        calls = {"dense": 0, "sparse": 0}
        orig_dense, orig_sparse = rt._to_dense, rt._to_sparse

        def count_dense(frontier, semiring):
            calls["dense"] += 1
            return orig_dense(frontier, semiring)

        def count_sparse(frontier, semiring):
            calls["sparse"] += 1
            return orig_sparse(frontier, semiring)

        rt._to_dense, rt._to_sparse = count_dense, count_sparse
        rt.spmv(f, sr)
        assert calls == {"dense": 1, "sparse": 1}

    def test_conversion_cost_logged_unchanged(self, matrix):
        """Memoization must not change the logged conversion cost."""
        sr = spmv_semiring()
        f = random_frontier(matrix.n_cols, 0.05, seed=31)
        oracle = CoSparseRuntime(matrix, GEOM, policy="oracle")
        static = CoSparseRuntime(matrix, GEOM, policy="static")
        oracle.spmv(f, sr)
        static.spmv(f, sr)
        if oracle.last_record.algorithm == "ip":
            # static config is also IP/SC: identical conversion work
            assert (
                oracle.last_record.conversion.words
                == static.last_record.conversion.words
            )
        assert oracle.last_record.conversion_cycles >= 0.0
