"""Reconfiguration log tests."""

import pytest

from repro.core import IterationRecord, ReconfigurationLog
from repro.formats import ConversionCost
from repro.hardware import HWMode, MemCounters, RunReport


def record(
    i, density, algo, mode, cycles, sw=False, hw=False, conv=0.0,
    energy_j=1e-6,
):
    return IterationRecord(
        iteration=i,
        vector_density=density,
        algorithm=algo,
        hw_mode=mode,
        report=RunReport(
            cycles=cycles, counters=MemCounters(), energy_j=energy_j
        ),
        conversion_cycles=conv,
        conversion=ConversionCost(),
        sw_switched=sw,
        hw_switched=hw,
    )


class TestRecord:
    def test_total_cycles_includes_conversion(self):
        r = record(0, 0.1, "ip", HWMode.SC, 1000.0, conv=50.0)
        assert r.total_cycles == 1050.0

    def test_config_label(self):
        assert record(0, 0.1, "op", HWMode.PS, 1.0).config_label == "OP/PS"


class TestLog:
    def build(self):
        log = ReconfigurationLog()
        log.append(record(0, 0.001, "op", HWMode.PC, 100.0))
        log.append(record(1, 0.3, "ip", HWMode.SC, 500.0, sw=True, hw=True))
        log.append(record(2, 0.5, "ip", HWMode.SCS, 400.0, hw=True, conv=10.0))
        return log

    def test_totals(self):
        log = self.build()
        assert log.total_cycles == 1010.0
        assert log.total_energy_j == 3e-6
        assert len(log) == 3

    def test_switch_counts(self):
        log = self.build()
        assert log.sw_switches == 1
        assert log.hw_switches == 2

    def test_sequences(self):
        log = self.build()
        assert log.config_sequence() == ["OP/PC", "IP/SC", "IP/SCS"]
        assert log.density_sequence() == [0.001, 0.3, 0.5]

    def test_summary_lists_iterations(self):
        text = self.build().summary()
        assert "3 iterations" in text
        assert "OP/PC" in text
        assert "[conv]" in text

    def test_iterable(self):
        assert [r.iteration for r in self.build()] == [0, 1, 2]


class TestEnergyAccounting:
    """'No energy model' (None) must stay distinguishable from 0 J."""

    def test_all_energyless_records_gives_none(self):
        log = ReconfigurationLog()
        log.append(record(0, 0.1, "ip", HWMode.SC, 100.0, energy_j=None))
        log.append(record(1, 0.2, "ip", HWMode.SC, 100.0, energy_j=None))
        assert log.total_energy_j is None

    def test_empty_log_sums_to_zero(self):
        assert ReconfigurationLog().total_energy_j == 0.0

    def test_mixed_records_sum_priced_energy_only(self):
        log = ReconfigurationLog()
        log.append(record(0, 0.1, "ip", HWMode.SC, 100.0, energy_j=2e-6))
        log.append(record(1, 0.2, "ip", HWMode.SC, 100.0, energy_j=None))
        log.append(record(2, 0.3, "ip", HWMode.SC, 100.0, energy_j=3e-6))
        assert log.total_energy_j == pytest.approx(5e-6)

    def test_zero_joules_is_not_none(self):
        log = ReconfigurationLog()
        log.append(record(0, 0.1, "ip", HWMode.SC, 100.0, energy_j=0.0))
        assert log.total_energy_j == 0.0
