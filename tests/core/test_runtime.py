"""CoSparseRuntime tests: policies, conversions, logging."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.core import CoSparseRuntime, SpMVOperand
from repro.formats import DenseVector, SparseVector
from repro.hardware import Geometry, HWMode
from repro.spmv import bfs_semiring, spmv_semiring
from repro.workloads import random_frontier, uniform_random


@pytest.fixture
def operand(medium_coo):
    return SpMVOperand(medium_coo)


@pytest.fixture
def runtime(operand):
    return CoSparseRuntime(operand, "2x8")


class TestOperand:
    def test_holds_both_formats(self, operand, medium_coo):
        assert operand.coo is medium_coo
        assert np.allclose(operand.csc.to_dense(), medium_coo.to_dense())

    def test_partition_cached(self, operand):
        g = Geometry(2, 4)
        assert operand.ip_partition(g) is operand.ip_partition(g)
        assert operand.ip_partition(g) is not operand.ip_partition(Geometry(2, 8))

    def test_from_any(self, medium_coo):
        assert SpMVOperand.from_any(medium_coo).coo is medium_coo
        op = SpMVOperand(medium_coo)
        assert SpMVOperand.from_any(op) is op
        via_scipy = SpMVOperand.from_any(medium_coo.to_scipy())
        assert via_scipy.info.nnz == medium_coo.nnz


class TestPolicies:
    def test_rejects_unknown_policy(self, operand):
        with pytest.raises(ConfigurationError):
            CoSparseRuntime(operand, "2x8", policy="greedy")

    def test_tree_switches_by_density(self, runtime, medium_coo, rng):
        sr = spmv_semiring()
        sparse = random_frontier(medium_coo.n_cols, 0.002, seed=1)
        dense = random_frontier(medium_coo.n_cols, 0.9, seed=2)
        runtime.spmv(sparse, sr)
        assert runtime.last_record.algorithm == "op"
        runtime.spmv(dense, sr)
        assert runtime.last_record.algorithm == "ip"
        assert runtime.last_record.sw_switched

    def test_static_policy_never_switches(self, operand, medium_coo):
        rt = CoSparseRuntime(
            operand, "2x8", policy="static", static_config=("ip", HWMode.SC)
        )
        sr = spmv_semiring()
        for d in (0.001, 0.5):
            rt.spmv(random_frontier(medium_coo.n_cols, d, seed=3), sr)
        assert all(r.algorithm == "ip" for r in rt.log)
        assert rt.log.sw_switches == 0

    def test_oracle_picks_minimum(self, operand, medium_coo):
        rt = CoSparseRuntime(operand, "2x8", policy="oracle")
        sr = spmv_semiring()
        rt.spmv(random_frontier(medium_coo.n_cols, 0.01, seed=4), sr)
        rec = rt.last_record
        assert len(rec.alternatives) == 4
        chosen = rec.report.cycles
        best_alt = min(a.cycles for a in rec.alternatives.values())
        assert chosen == pytest.approx(best_alt, rel=0.05) or chosen <= best_alt * 1.05

    def test_oracle_and_tree_agree_functionally(self, operand, medium_coo):
        sr = spmv_semiring()
        f = random_frontier(medium_coo.n_cols, 0.05, seed=5)
        tree = CoSparseRuntime(operand, "2x8", policy="tree").spmv(f, sr)
        oracle = CoSparseRuntime(operand, "2x8", policy="oracle").spmv(f, sr)
        assert np.allclose(tree.values, oracle.values)


class TestConversions:
    def test_sparse_to_dense_for_ip_uses_absent(self, operand, medium_coo):
        rt = CoSparseRuntime(
            operand, "2x8", policy="static", static_config=("ip", HWMode.SC)
        )
        sr = bfs_semiring()  # absent = +inf
        f = SparseVector(medium_coo.n_cols, [3], [0.0])
        res = rt.spmv(f, sr)
        assert rt.last_record.conversion.words > 0
        # result rows not reachable from vertex 3 stay at identity
        assert np.isinf(res.values[~res.touched]).all()

    def test_dense_to_sparse_for_op(self, operand, medium_coo, rng):
        rt = CoSparseRuntime(
            operand, "2x8", policy="static", static_config=("op", HWMode.PC)
        )
        sr = spmv_semiring()
        dense = DenseVector((rng.random(medium_coo.n_cols) < 0.01) * 1.0)
        rt.spmv(dense, sr)
        assert rt.last_record.conversion.words > 0

    def test_no_conversion_when_format_matches(self, operand, medium_coo):
        rt = CoSparseRuntime(
            operand, "2x8", policy="static", static_config=("op", HWMode.PC)
        )
        f = random_frontier(medium_coo.n_cols, 0.01, seed=6)
        rt.spmv(f, spmv_semiring())
        assert rt.last_record.conversion.words == 0
        assert rt.last_record.conversion_cycles == 0.0

    def test_density_measure_2d(self):
        sr = type("S", (), {"absent": 0.0})  # duck-typed semiring
        arr = np.zeros((4, 3))
        arr[1, 2] = 1.0
        assert CoSparseRuntime.frontier_density(arr, sr) == pytest.approx(0.25)


class TestLogging:
    def test_log_grows(self, runtime, medium_coo):
        sr = spmv_semiring()
        for i, d in enumerate((0.001, 0.5, 0.001)):
            runtime.spmv(random_frontier(medium_coo.n_cols, d, seed=i), sr)
        assert len(runtime.log) == 3
        assert runtime.log.sw_switches == 2
        assert runtime.log.total_cycles > 0
        assert runtime.log.total_energy_j > 0

    def test_reset_log(self, runtime, medium_coo):
        runtime.spmv(random_frontier(medium_coo.n_cols, 0.1, seed=9), spmv_semiring())
        runtime.reset_log()
        assert len(runtime.log) == 0
        assert runtime.last_record is None

    def test_config_sequence_labels(self, runtime, medium_coo):
        runtime.spmv(
            random_frontier(medium_coo.n_cols, 0.001, seed=10), spmv_semiring()
        )
        assert runtime.log.config_sequence()[0].startswith("OP/")

    def test_summary_renders(self, runtime, medium_coo):
        runtime.spmv(
            random_frontier(medium_coo.n_cols, 0.01, seed=11), spmv_semiring()
        )
        assert "iterations" in runtime.log.summary()
