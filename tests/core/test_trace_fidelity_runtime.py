"""End-to-end runtime + algorithms under the exact trace-replay engine."""

import numpy as np
import pytest

from repro.core import CoSparseRuntime
from repro.graphs import Graph, bfs, sssp
from repro.workloads import uniform_random


@pytest.fixture(scope="module")
def tiny_graph():
    return Graph(uniform_random(300, nnz=2500, seed=19, remove_self_loops=True), name="tiny")


class TestTraceFidelityEndToEnd:
    def test_bfs_identical_results_across_fidelities(self, tiny_graph):
        a = bfs(tiny_graph, 0, geometry="2x2", fidelity="analytic")
        t = bfs(
            tiny_graph, 0, geometry="2x2", fidelity="trace", with_trace=True
        )
        assert np.allclose(
            np.nan_to_num(a.values, posinf=-1), np.nan_to_num(t.values, posinf=-1)
        )

    def test_trace_reports_are_trace_fidelity(self, tiny_graph):
        run = bfs(
            tiny_graph, 0, geometry="2x2", fidelity="trace", with_trace=True
        )
        assert all(r.report.fidelity == "trace" for r in run.log)

    def test_cycles_within_band(self, tiny_graph):
        a = sssp(tiny_graph, 0, geometry="2x2", fidelity="analytic")
        t = sssp(
            tiny_graph, 0, geometry="2x2", fidelity="trace", with_trace=True
        )
        assert np.allclose(
            np.nan_to_num(a.values, posinf=-1), np.nan_to_num(t.values, posinf=-1)
        )
        ratio = a.total_cycles / t.total_cycles
        assert 1 / 3 < ratio < 3

    def test_auto_fidelity_uses_traces_when_present(self, tiny_graph):
        rt = CoSparseRuntime(
            tiny_graph.operand, "2x2", fidelity="auto", with_trace=True
        )
        run = bfs(tiny_graph, 0, runtime=rt)
        assert all(r.report.fidelity == "trace" for r in run.log)
