"""Decision-tree tests (Fig. 2 + Section III-C thresholds)."""

import pytest

from repro.errors import ConfigurationError
from repro.core import DecisionThresholds, DecisionTree, MatrixInfo
from repro.hardware import Geometry, HWMode


def info(n=262_144, nnz=4_000_000):
    return MatrixInfo(n, n, nnz)


class TestMatrixInfo:
    def test_density(self):
        i = MatrixInfo(100, 200, 50)
        assert i.density == pytest.approx(50 / 20000)

    def test_empty_shape(self):
        assert MatrixInfo(0, 0, 0).density == 0.0

    def test_of_extracts(self, medium_coo):
        i = MatrixInfo.of(medium_coo)
        assert i.nnz == medium_coo.nnz
        assert (i.n_rows, i.n_cols) == medium_coo.shape


class TestSoftwareThreshold:
    def test_cvd_halves_when_pes_double(self):
        """'The crossover density decreases from ~2% to ~0.5% as the
        number of PEs in a tile increases from 8 to 32.'"""
        cvd8 = DecisionTree(Geometry(4, 8)).crossover_density(info())
        cvd16 = DecisionTree(Geometry(4, 16)).crossover_density(info())
        cvd32 = DecisionTree(Geometry(4, 32)).crossover_density(info())
        assert cvd8 == pytest.approx(2 * cvd16, rel=0.1)
        assert cvd16 == pytest.approx(2 * cvd32, rel=0.1)

    def test_paper_endpoints(self):
        assert 0.01 <= DecisionTree(Geometry(4, 8)).crossover_density(
            MatrixInfo(131_072, 131_072, 4_000_000)
        ) <= 0.03
        assert 0.003 <= DecisionTree(Geometry(4, 32)).crossover_density(
            MatrixInfo(131_072, 131_072, 4_000_000)
        ) <= 0.01

    def test_sparser_matrix_raises_cvd(self):
        tree = DecisionTree(Geometry(4, 16))
        dense_m = MatrixInfo(131_072, 131_072, 4_000_000)
        sparse_m = MatrixInfo(1_048_576, 1_048_576, 4_000_000)
        assert tree.crossover_density(sparse_m) > tree.crossover_density(dense_m)

    def test_software_choice(self):
        tree = DecisionTree(Geometry(4, 16))
        cvd = tree.crossover_density(info())
        assert tree.software(info(), cvd * 2) == "ip"
        assert tree.software(info(), cvd / 2) == "op"

    def test_cvd_clamped(self):
        t = DecisionThresholds(cvd_min=0.001, cvd_max=0.05)
        tree = DecisionTree(Geometry(4, 1024), thresholds=t)
        assert tree.crossover_density(info()) >= 0.001


class TestHardwareIP:
    def test_fits_on_chip_means_sc(self):
        tree = DecisionTree(Geometry(8, 16))
        tiny = MatrixInfo(100, 100, 500)
        assert tree.fits_on_chip(tiny)
        assert tree.hardware_ip(tiny, 1.0) is HWMode.SC

    def test_dense_vector_high_reuse_means_scs(self):
        tree = DecisionTree(Geometry(4, 16))
        m = MatrixInfo(131_072, 131_072, 4_000_000)  # Nreuse ~ 120
        assert not tree.fits_on_chip(m)
        assert tree.hardware_ip(m, 0.47) is HWMode.SCS

    def test_sparse_vector_means_sc(self):
        tree = DecisionTree(Geometry(4, 16))
        m = MatrixInfo(131_072, 131_072, 4_000_000)
        assert tree.hardware_ip(m, 0.05) is HWMode.SC

    def test_low_reuse_means_sc_even_when_dense(self):
        """Fig. 5: the N=1M matrix (Nreuse ~ 14) gains nothing from SCS."""
        tree = DecisionTree(Geometry(4, 16))
        m = MatrixInfo(1_048_576, 1_048_576, 4_000_000)
        assert tree.nreuse(m) < tree.thresholds.scs_min_reuse
        assert tree.hardware_ip(m, 1.0) is HWMode.SC

    def test_nreuse_formula(self):
        tree = DecisionTree(Geometry(4, 16))
        m = info()
        expected = m.n_cols * m.density * 16 / 4
        assert tree.nreuse(m) == pytest.approx(expected)


class TestHardwareOP:
    def test_small_heap_means_pc(self):
        tree = DecisionTree(Geometry(4, 16))
        m = info()
        # 0.1% density: 2*262*0.1%... heap well under 1024 words
        assert tree.hardware_op(m, 0.001) is HWMode.PC

    def test_big_heap_means_ps(self):
        tree = DecisionTree(Geometry(4, 16))
        m = info()
        assert tree.hardware_op(m, 0.04) is HWMode.PS

    def test_more_pes_shrink_heap(self):
        m = info()
        d = 0.008
        few = DecisionTree(Geometry(4, 4)).hardware_op(m, d)
        many = DecisionTree(Geometry(4, 64)).hardware_op(m, d)
        assert few is HWMode.PS
        assert many is HWMode.PC


class TestDecide:
    def test_walks_both_levels(self):
        tree = DecisionTree(Geometry(4, 16))
        d = tree.decide(info(), 0.5)
        assert d.algorithm == "ip"
        assert d.hw_mode in (HWMode.SC, HWMode.SCS)
        d = tree.decide(info(), 0.001)
        assert d.algorithm == "op"
        assert d.hw_mode in (HWMode.PC, HWMode.PS)

    def test_rejects_bad_density(self):
        tree = DecisionTree(Geometry(4, 16))
        with pytest.raises(ConfigurationError):
            tree.decide(info(), 1.5)

    def test_decision_labels(self):
        tree = DecisionTree(Geometry(4, 16))
        assert str(tree.decide(info(), 0.5)).startswith("IP/")
