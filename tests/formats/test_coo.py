"""Unit tests for the COO container."""

import numpy as np
import pytest

from repro.errors import FormatError, ShapeError
from repro.formats import COOMatrix


class TestConstruction:
    def test_sorts_row_major(self):
        m = COOMatrix(3, 3, [2, 0, 1, 0], [0, 2, 1, 0], [1.0, 2.0, 3.0, 4.0])
        assert list(m.rows) == [0, 0, 1, 2]
        assert list(m.cols) == [0, 2, 1, 0]
        assert list(m.vals) == [4.0, 2.0, 3.0, 1.0]

    def test_rejects_length_mismatch(self):
        with pytest.raises(FormatError):
            COOMatrix(2, 2, [0, 1], [0], [1.0])

    def test_rejects_row_out_of_range(self):
        with pytest.raises(FormatError):
            COOMatrix(2, 2, [2], [0], [1.0])

    def test_rejects_col_out_of_range(self):
        with pytest.raises(FormatError):
            COOMatrix(2, 2, [0], [5], [1.0])

    def test_rejects_negative_index(self):
        with pytest.raises(FormatError):
            COOMatrix(2, 2, [-1], [0], [1.0])

    def test_rejects_negative_shape(self):
        with pytest.raises(FormatError):
            COOMatrix(-1, 2, [], [], [])

    def test_empty(self):
        m = COOMatrix.empty(5, 7)
        assert m.shape == (5, 7)
        assert m.nnz == 0
        assert m.density == 0.0

    def test_zero_by_zero_density(self):
        assert COOMatrix.empty(0, 0).density == 0.0


class TestRoundTrips:
    def test_dense_round_trip(self, small_dense):
        m = COOMatrix.from_dense(small_dense)
        assert np.allclose(m.to_dense(), small_dense)

    def test_from_dense_rejects_1d(self):
        with pytest.raises(FormatError):
            COOMatrix.from_dense(np.ones(4))

    def test_scipy_round_trip(self, small_coo):
        back = COOMatrix.from_scipy(small_coo.to_scipy())
        assert back.allclose(small_coo)

    def test_nnz_and_density(self, small_dense):
        m = COOMatrix.from_dense(small_dense)
        assert m.nnz == np.count_nonzero(small_dense)
        assert m.density == pytest.approx(m.nnz / small_dense.size)


class TestStructure:
    def test_sum_duplicates(self):
        m = COOMatrix(2, 2, [0, 0, 1], [1, 1, 0], [1.0, 2.0, 5.0])
        d = m.sum_duplicates()
        assert d.nnz == 2
        assert d.to_dense()[0, 1] == 3.0
        assert d.to_dense()[1, 0] == 5.0

    def test_transpose(self, small_dense):
        m = COOMatrix.from_dense(small_dense)
        assert np.allclose(m.transpose().to_dense(), small_dense.T)

    def test_transpose_is_row_major(self, small_coo):
        t = small_coo.transpose()
        keys = t.rows * t.n_cols + t.cols
        assert np.all(np.diff(keys) > 0)

    def test_row_counts_match_dense(self, small_dense):
        m = COOMatrix.from_dense(small_dense)
        assert np.array_equal(m.row_counts(), (small_dense != 0).sum(axis=1))

    def test_col_counts_match_dense(self, small_dense):
        m = COOMatrix.from_dense(small_dense)
        assert np.array_equal(m.col_counts(), (small_dense != 0).sum(axis=0))

    def test_row_extents(self, small_coo):
        ptr = small_coo.row_extents()
        assert ptr[0] == 0
        assert ptr[-1] == small_coo.nnz
        assert np.all(np.diff(ptr) >= 0)


class TestSlicing:
    def test_row_range_partition_covers_matrix(self, medium_coo):
        a = medium_coo.row_range(0, 1000)
        b = medium_coo.row_range(1000, 2000)
        assert a.nnz + b.nnz == medium_coo.nnz

    def test_row_range_keeps_indices(self, small_coo):
        part = small_coo.row_range(10, 20)
        assert part.nnz == 0 or part.rows.min() >= 10
        assert part.nnz == 0 or part.rows.max() < 20

    def test_row_range_rejects_bad_bounds(self, small_coo):
        with pytest.raises(ShapeError):
            small_coo.row_range(20, 10)
        with pytest.raises(ShapeError):
            small_coo.row_range(0, 1000)

    def test_nnz_slice(self, small_coo):
        half = small_coo.nnz // 2
        a = small_coo.nnz_slice(0, half)
        b = small_coo.nnz_slice(half, small_coo.nnz)
        assert a.nnz == half
        assert a.nnz + b.nnz == small_coo.nnz

    def test_iter_vblocks_partitions_entries(self, small_coo):
        total = 0
        for start_col, mask in small_coo.iter_vblocks(7):
            assert start_col % 7 == 0
            sel = small_coo.cols[mask]
            if len(sel):
                assert sel.min() >= start_col
                assert sel.max() < start_col + 7
            total += int(mask.sum())
        assert total == small_coo.nnz

    def test_iter_vblocks_rejects_nonpositive(self, small_coo):
        with pytest.raises(ShapeError):
            list(small_coo.iter_vblocks(0))
