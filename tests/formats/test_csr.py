"""Unit tests for the CSR container (baseline format)."""

import numpy as np
import pytest

from repro.errors import FormatError, ShapeError
from repro.formats import COOMatrix, CSRMatrix


class TestConstruction:
    def test_from_coo_round_trip(self, small_coo):
        csr = CSRMatrix.from_coo(small_coo)
        assert np.allclose(csr.to_dense(), small_coo.to_dense())

    def test_from_dense(self, small_dense):
        assert np.allclose(CSRMatrix.from_dense(small_dense).to_dense(), small_dense)

    def test_scipy_round_trip(self, small_coo):
        csr = CSRMatrix.from_coo(small_coo)
        back = CSRMatrix.from_scipy(csr.to_scipy())
        assert np.allclose(back.to_dense(), csr.to_dense())

    def test_rejects_bad_indptr(self):
        with pytest.raises(FormatError):
            CSRMatrix(2, 2, [0, 2], [0, 1], [1.0, 2.0])

    def test_rejects_col_out_of_range(self):
        with pytest.raises(FormatError):
            CSRMatrix(1, 2, [0, 1], [4], [1.0])


class TestRows:
    def test_row_contents(self, small_dense):
        csr = CSRMatrix.from_dense(small_dense)
        for i in (0, 17, csr.n_rows - 1):
            cols, vals = csr.row(i)
            assert np.array_equal(cols, np.nonzero(small_dense[i])[0])
            assert np.allclose(vals, small_dense[i, cols])

    def test_row_rejects_out_of_range(self, small_coo):
        csr = CSRMatrix.from_coo(small_coo)
        with pytest.raises(ShapeError):
            csr.row(-1)

    def test_row_lengths(self, small_dense):
        csr = CSRMatrix.from_dense(small_dense)
        assert np.array_equal(csr.row_lengths(), (small_dense != 0).sum(axis=1))


class TestMatvec:
    def test_matches_dense(self, small_dense, rng):
        csr = CSRMatrix.from_dense(small_dense)
        x = rng.random(csr.n_cols)
        assert np.allclose(csr.matvec(x), small_dense @ x)

    def test_matches_scipy(self, medium_coo, rng):
        csr = CSRMatrix.from_coo(medium_coo)
        x = rng.random(csr.n_cols)
        assert np.allclose(csr.matvec(x), medium_coo.to_scipy() @ x)

    def test_rejects_wrong_length(self, small_coo):
        csr = CSRMatrix.from_coo(small_coo)
        with pytest.raises(ShapeError):
            csr.matvec(np.ones(csr.n_cols + 1))

    def test_zero_vector_gives_zero(self, small_coo):
        csr = CSRMatrix.from_coo(small_coo)
        assert np.allclose(csr.matvec(np.zeros(csr.n_cols)), 0.0)
