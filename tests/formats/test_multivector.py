"""MultiVector batch container and absent-aware sparse conversion."""

import numpy as np
import pytest

from repro.errors import FormatError, ShapeError
from repro.formats import (
    ConversionCost,
    DenseVector,
    MultiVector,
    SparseVector,
    dense_to_sparse,
    ensure_sparse,
)


class TestConstruction:
    def test_mixed_columns(self):
        sv = SparseVector(6, [1, 4], [2.0, 3.0])
        arr = np.array([0.0, 0.0, 5.0, 0.0, 0.0, 1.0])
        mv = MultiVector([sv, arr, DenseVector(arr)])
        assert mv.shape == (6, 3)
        assert mv.native(0) == "sparse"
        assert mv.native(1) == "dense"
        assert mv.native(2) == "dense"
        assert np.array_equal(mv.column_dense(0), sv.to_dense())
        assert np.array_equal(mv.column_dense(1), arr)

    def test_block_is_column_major(self):
        mv = MultiVector([np.zeros(5), np.ones(5)])
        assert mv.block.flags["F_CONTIGUOUS"]
        assert mv.column_dense(1).flags["C_CONTIGUOUS"]

    def test_absent_fill_for_min_semirings(self):
        sv = SparseVector(4, [2], [0.0])  # live zero-valued entry
        mv = MultiVector([sv], absent=np.inf)
        col = mv.column_dense(0)
        assert col[2] == 0.0
        assert np.all(np.isinf(col[[0, 1, 3]]))
        assert mv.column_nnz(0) == 1

    def test_rejects_empty_and_ragged(self):
        with pytest.raises(FormatError):
            MultiVector([])
        with pytest.raises(ShapeError):
            MultiVector([np.zeros(4), np.zeros(5)])
        with pytest.raises(FormatError):
            MultiVector([np.zeros((2, 2))])

    def test_from_dense(self):
        block = np.array([[1.0, 0.0], [0.0, 2.0], [0.0, 0.0]])
        mv = MultiVector.from_dense(block)
        assert mv.shape == (3, 2)
        assert mv.column_nnz(0) == 1 and mv.column_nnz(1) == 1
        assert np.array_equal(mv.block, block)


class TestDensityAndViews:
    def test_density_matches_native_semantics(self):
        # A sparse column's explicit absent-valued entry still counts
        # structurally, exactly like SparseVector.density.
        sv = SparseVector(4, [0, 1], [np.inf, 2.0])
        mv = MultiVector([sv], absent=np.inf)
        assert mv.density(0) == sv.density == 0.5
        # A dense column counts entries differing from absent.
        mv2 = MultiVector([np.array([np.inf, 1.0, np.inf, np.inf])], absent=np.inf)
        assert mv2.density(0) == 0.25
        assert np.allclose(mv2.densities, [0.25])

    def test_column_sparse_cached_and_correct(self):
        arr = np.array([0.0, 3.0, 0.0, 4.0])
        mv = MultiVector([arr])
        sv = mv.column_sparse(0)
        assert sv is mv.column_sparse(0)
        assert np.array_equal(sv.indices, [1, 3])
        assert np.array_equal(sv.values, [3.0, 4.0])

    def test_column_sparse_returns_native_object(self):
        sv = SparseVector(4, [2], [1.0])
        mv = MultiVector([sv])
        assert mv.column_sparse(0) is sv

    def test_nnz_totals(self):
        mv = MultiVector([np.array([1.0, 0.0]), np.array([1.0, 1.0])])
        assert mv.nnz == 3


class TestConversionCost:
    def test_native_format_is_free(self):
        sv = SparseVector(5, [1], [1.0])
        mv = MultiVector([sv, np.array([0.0, 1.0, 0.0, 0.0, 2.0])])
        assert mv.conversion_cost(0, "sparse") == ConversionCost()
        assert mv.conversion_cost(1, "dense") == ConversionCost()

    def test_cross_format_matches_sequential_charges(self):
        sv = SparseVector(5, [1, 3], [1.0, 2.0])
        arr = np.array([0.0, 1.0, 0.0, 0.0, 2.0])
        mv = MultiVector([sv, arr])
        # sparse -> dense: read 2*nnz pair words, write n + nnz
        assert mv.conversion_cost(0, "dense") == ConversionCost(reads=4, writes=7)
        # dense -> sparse: scan n, write 2*nnz
        assert mv.conversion_cost(1, "sparse") == ConversionCost(reads=5, writes=4)
        with pytest.raises(FormatError):
            mv.conversion_cost(0, "blocked")


class TestSelect:
    def test_select_preserves_native_repr(self):
        sv = SparseVector(4, [1], [1.0])
        mv = MultiVector([sv, np.array([1.0, 0.0, 0.0, 0.0])])
        sub = mv.select([1, 0])
        assert sub.k == 2
        assert sub.native(0) == "dense" and sub.native(1) == "sparse"
        assert np.array_equal(sub.column_dense(1), sv.to_dense())

    def test_select_bounds(self):
        mv = MultiVector([np.zeros(3)])
        with pytest.raises(FormatError):
            mv.select([])
        with pytest.raises(FormatError):
            mv.select([1])


class TestSparseVectorFromDenseAbsent:
    """SparseVector.from_dense keys on != absent, not != 0."""

    def test_default_absent_zero(self):
        sv = SparseVector.from_dense(np.array([0.0, 2.0, 0.0]))
        assert np.array_equal(sv.indices, [1])

    def test_min_plus_absent_keeps_live_zero(self):
        dense = np.array([np.inf, 0.0, 3.0, np.inf])
        sv = SparseVector.from_dense(dense, absent=np.inf)
        assert np.array_equal(sv.indices, [1, 2])
        assert np.array_equal(sv.values, [0.0, 3.0])

    def test_dense_vector_to_sparse_threads_absent(self):
        dv = DenseVector(np.array([np.inf, 0.0, np.inf]))
        assert dv.to_sparse(absent=np.inf).nnz == 1
        sv, cost = dense_to_sparse(dv, absent=np.inf)
        assert sv.nnz == 1
        assert cost == ConversionCost(reads=3, writes=2)
        sv2, _ = ensure_sparse(dv, absent=np.inf)
        assert sv2.nnz == 1
