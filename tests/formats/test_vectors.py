"""Unit tests for the dense/sparse frontier vectors and conversions."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.formats import (
    ConversionCost,
    DenseVector,
    SparseVector,
    dense_to_sparse,
    ensure_dense,
    ensure_sparse,
    sparse_to_dense,
    vector_density,
)


class TestSparseVector:
    def test_sorts_indices(self):
        sv = SparseVector(10, [7, 2, 5], [1.0, 2.0, 3.0])
        assert list(sv.indices) == [2, 5, 7]
        assert list(sv.values) == [2.0, 3.0, 1.0]

    def test_rejects_duplicates(self):
        with pytest.raises(FormatError):
            SparseVector(5, [1, 1], [1.0, 2.0])

    def test_rejects_out_of_range(self):
        with pytest.raises(FormatError):
            SparseVector(5, [5], [1.0])

    def test_rejects_length_mismatch(self):
        with pytest.raises(FormatError):
            SparseVector(5, [1, 2], [1.0])

    def test_density(self):
        sv = SparseVector(10, [1, 2], [1.0, 2.0])
        assert sv.density == pytest.approx(0.2)
        assert SparseVector.empty(0).density == 0.0

    def test_dense_round_trip(self, rng):
        dense = (rng.random(50) < 0.3) * rng.random(50)
        sv = SparseVector.from_dense(dense)
        assert np.allclose(sv.to_dense(), dense)

    def test_explicit_zero_is_structural(self):
        sv = SparseVector(4, [1], [0.0])
        assert sv.nnz == 1  # BFS puts vertices with value 0 on frontiers

    def test_chunk_partitions_entries(self):
        sv = SparseVector(100, np.arange(0, 100, 3), np.ones(34))
        chunks = sv.chunk(5)
        assert len(chunks) == 5
        assert sum(len(c[0]) for c in chunks) == sv.nnz
        sizes = [len(c[0]) for c in chunks]
        assert max(sizes) - min(sizes) <= 1  # LCP distributes evenly

    def test_chunk_more_chunks_than_entries(self):
        sv = SparseVector(10, [3], [1.0])
        chunks = sv.chunk(4)
        assert sum(len(c[0]) for c in chunks) == 1

    def test_chunk_rejects_nonpositive(self):
        with pytest.raises(FormatError):
            SparseVector.empty(4).chunk(0)


class TestDenseVector:
    def test_density_counts_nonzeros(self):
        dv = DenseVector([0.0, 1.0, 0.0, 2.0])
        assert dv.nnz == 2
        assert dv.density == pytest.approx(0.5)

    def test_rejects_2d(self):
        with pytest.raises(FormatError):
            DenseVector(np.ones((2, 2)))

    def test_zeros_and_full(self):
        assert DenseVector.zeros(4).nnz == 0
        assert DenseVector.full(4, 2.5).nnz == 4

    def test_copy_is_independent(self):
        a = DenseVector.zeros(3)
        b = a.copy()
        b.data[0] = 1.0
        assert a.data[0] == 0.0

    def test_to_sparse_round_trip(self, rng):
        data = (rng.random(30) < 0.4) * rng.random(30)
        dv = DenseVector(data)
        assert np.allclose(dv.to_sparse().to_dense(), data)


class TestConversions:
    def test_dense_to_sparse_cost(self):
        dv = DenseVector(np.asarray([0.0, 1.0, 2.0, 0.0]))
        sv, cost = dense_to_sparse(dv)
        assert sv.nnz == 2
        assert cost.reads == 4  # scan the dense array
        assert cost.writes == 4  # two (index, value) pairs

    def test_sparse_to_dense_cost(self):
        sv = SparseVector(6, [1, 3], [1.0, 2.0])
        dv, cost = sparse_to_dense(sv)
        assert dv.nnz == 2
        assert cost.reads == 4
        assert cost.writes == 6 + 2

    def test_ensure_dense_noop(self):
        dv = DenseVector.zeros(4)
        out, cost = ensure_dense(dv)
        assert out is dv
        assert cost.words == 0

    def test_ensure_sparse_noop(self):
        sv = SparseVector.empty(4)
        out, cost = ensure_sparse(sv)
        assert out is sv
        assert cost.words == 0

    def test_ensure_dense_from_raw_array(self):
        out, cost = ensure_dense(np.ones(3))
        assert isinstance(out, DenseVector)
        assert cost.words == 0

    def test_cost_addition(self):
        total = ConversionCost(1, 2) + ConversionCost(3, 4)
        assert total.reads == 4
        assert total.writes == 6
        assert total.words == 10

    def test_vector_density_dispatch(self):
        assert vector_density(DenseVector([0.0, 1.0])) == 0.5
        assert vector_density(SparseVector(4, [0], [1.0])) == 0.25
        assert vector_density(np.asarray([0.0, 0.0, 3.0])) == pytest.approx(1 / 3)
        assert vector_density(np.zeros(0)) == 0.0
