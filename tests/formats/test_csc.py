"""Unit tests for the CSC container."""

import numpy as np
import pytest

from repro.errors import FormatError, ShapeError
from repro.formats import COOMatrix, CSCMatrix


class TestConstruction:
    def test_from_coo_round_trip(self, small_coo):
        csc = CSCMatrix.from_coo(small_coo)
        assert np.allclose(csc.to_dense(), small_coo.to_dense())

    def test_from_dense(self, small_dense):
        assert np.allclose(CSCMatrix.from_dense(small_dense).to_dense(), small_dense)

    def test_scipy_round_trip(self, small_csc):
        back = CSCMatrix.from_scipy(small_csc.to_scipy())
        assert np.allclose(back.to_dense(), small_csc.to_dense())

    def test_rows_sorted_within_columns(self, small_csc):
        for j in range(small_csc.n_cols):
            rows, _ = small_csc.column(j)
            assert np.all(np.diff(rows) > 0)

    def test_rejects_bad_indptr_length(self):
        with pytest.raises(FormatError):
            CSCMatrix(2, 2, [0, 1], [0], [1.0])

    def test_rejects_decreasing_indptr(self):
        with pytest.raises(FormatError):
            CSCMatrix(2, 2, [0, 1, 0], [0], [1.0])

    def test_rejects_indptr_not_ending_at_nnz(self):
        with pytest.raises(FormatError):
            CSCMatrix(2, 2, [0, 1, 5], [0], [1.0])

    def test_rejects_row_out_of_range(self):
        with pytest.raises(FormatError):
            CSCMatrix(2, 2, [0, 1, 1], [7], [1.0])


class TestColumns:
    def test_column_contents(self, small_dense, small_csc):
        for j in (0, 5, small_csc.n_cols - 1):
            rows, vals = small_csc.column(j)
            dense_col = small_dense[:, j]
            assert np.array_equal(rows, np.nonzero(dense_col)[0])
            assert np.allclose(vals, dense_col[rows])

    def test_column_rejects_out_of_range(self, small_csc):
        with pytest.raises(ShapeError):
            small_csc.column(small_csc.n_cols)

    def test_column_lengths(self, small_csc, small_dense):
        assert np.array_equal(
            small_csc.column_lengths(), (small_dense != 0).sum(axis=0)
        )

    def test_column_lengths_subset(self, small_csc):
        js = np.asarray([0, 3, 9])
        assert np.array_equal(
            small_csc.column_lengths(js), small_csc.column_lengths()[js]
        )

    def test_nonempty_columns(self, small_csc):
        js = np.arange(small_csc.n_cols)
        ne = small_csc.nonempty_columns(js)
        lengths = small_csc.column_lengths()
        assert np.array_equal(ne, js[lengths > 0])


class TestGather:
    def test_gather_columns_matches_columns(self, small_csc):
        js = np.asarray([2, 7, 11])
        rows, vals, col_of = small_csc.gather_columns(js)
        off = 0
        for j in js:
            r, v = small_csc.column(j)
            n = len(r)
            assert np.array_equal(rows[off : off + n], r)
            assert np.allclose(vals[off : off + n], v)
            assert np.all(col_of[off : off + n] == j)
            off += n
        assert off == len(rows)

    def test_gather_empty_selection(self, small_csc):
        rows, vals, col_of = small_csc.gather_columns(np.zeros(0, dtype=np.int64))
        assert len(rows) == len(vals) == len(col_of) == 0

    def test_gather_all_columns_equals_nnz(self, medium_csc):
        rows, vals, _ = medium_csc.gather_columns(np.arange(medium_csc.n_cols))
        assert len(rows) == medium_csc.nnz
