"""Blocked (vblock-major) COO layout tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.formats import BlockedCOO, COOMatrix
from repro.spmv import build_ip_partitions


def flat_bounds(coo, tiles, pes):
    part = build_ip_partitions(coo.row_extents(), tiles, pes)
    return np.concatenate(
        [b[:-1] for b in part.pe_bounds] + [[coo.n_rows]]
    ).astype(np.int64)


class TestBlocking:
    def test_preserves_content(self, medium_coo):
        b = BlockedCOO(medium_coo, flat_bounds(medium_coo, 2, 4), 128)
        assert b.to_coo().allclose(medium_coo)
        assert b.nnz == medium_coo.nnz

    def test_invariants(self, medium_coo):
        b = BlockedCOO(medium_coo, flat_bounds(medium_coo, 2, 4), 100)
        assert b.check_invariants()

    def test_partition_streams_contiguous_and_disjoint(self, medium_coo):
        b = BlockedCOO(medium_coo, flat_bounds(medium_coo, 2, 4), 256)
        prev_hi = 0
        for p in range(b.n_partitions):
            lo, hi = b.partition_range(p)
            assert lo == prev_hi
            prev_hi = hi
        assert prev_hi == b.nnz

    def test_schedule_order_row_major_inside_group(self, medium_coo):
        b = BlockedCOO(medium_coo, flat_bounds(medium_coo, 2, 4), 256)
        for vb, rows, cols, _vals in b.iter_schedule(0):
            keys = rows * b.n_cols + cols
            assert np.all(np.diff(keys) > 0)

    def test_group_range_validation(self, medium_coo):
        b = BlockedCOO(medium_coo, flat_bounds(medium_coo, 2, 4), 256)
        with pytest.raises(ShapeError):
            b.group_range(b.n_partitions, 0)
        with pytest.raises(ShapeError):
            b.group_range(0, b.n_vblocks)

    def test_rejects_bad_bounds(self, medium_coo):
        with pytest.raises(ShapeError):
            BlockedCOO(medium_coo, [0, 10], 64)  # doesn't cover all rows
        with pytest.raises(ShapeError):
            BlockedCOO(medium_coo, [0, medium_coo.n_rows], 0)

    @given(
        n=st.integers(4, 60),
        density=st.floats(0.01, 0.5),
        parts=st.integers(1, 8),
        width=st.integers(1, 64),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_round_trip_property(self, n, density, parts, width, seed):
        rng = np.random.default_rng(seed)
        dense = (rng.random((n, n)) < density) * rng.random((n, n))
        coo = COOMatrix.from_dense(dense)
        bounds = np.linspace(0, n, parts + 1).astype(np.int64)
        b = BlockedCOO(coo, bounds, width)
        assert b.check_invariants()
        assert np.allclose(b.to_coo().to_dense(), dense)
