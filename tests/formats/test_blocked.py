"""Blocked (vblock-major) COO layout tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.formats import BlockedCOO, COOMatrix
from repro.spmv import build_ip_partitions


def flat_bounds(coo, tiles, pes):
    part = build_ip_partitions(coo.row_extents(), tiles, pes)
    return np.concatenate(
        [b[:-1] for b in part.pe_bounds] + [[coo.n_rows]]
    ).astype(np.int64)


class TestBlocking:
    def test_preserves_content(self, medium_coo):
        b = BlockedCOO(medium_coo, flat_bounds(medium_coo, 2, 4), 128)
        assert b.to_coo().allclose(medium_coo)
        assert b.nnz == medium_coo.nnz

    def test_invariants(self, medium_coo):
        b = BlockedCOO(medium_coo, flat_bounds(medium_coo, 2, 4), 100)
        assert b.check_invariants()

    def test_partition_streams_contiguous_and_disjoint(self, medium_coo):
        b = BlockedCOO(medium_coo, flat_bounds(medium_coo, 2, 4), 256)
        prev_hi = 0
        for p in range(b.n_partitions):
            lo, hi = b.partition_range(p)
            assert lo == prev_hi
            prev_hi = hi
        assert prev_hi == b.nnz

    def test_schedule_order_row_major_inside_group(self, medium_coo):
        b = BlockedCOO(medium_coo, flat_bounds(medium_coo, 2, 4), 256)
        for vb, rows, cols, _vals in b.iter_schedule(0):
            keys = rows * b.n_cols + cols
            assert np.all(np.diff(keys) > 0)

    def test_group_range_validation(self, medium_coo):
        b = BlockedCOO(medium_coo, flat_bounds(medium_coo, 2, 4), 256)
        with pytest.raises(ShapeError):
            b.group_range(b.n_partitions, 0)
        with pytest.raises(ShapeError):
            b.group_range(0, b.n_vblocks)

    def test_rejects_bad_bounds(self, medium_coo):
        with pytest.raises(ShapeError):
            BlockedCOO(medium_coo, [0, 10], 64)  # doesn't cover all rows
        with pytest.raises(ShapeError):
            BlockedCOO(medium_coo, [0, medium_coo.n_rows], 0)

    @given(
        n=st.integers(4, 60),
        density=st.floats(0.01, 0.5),
        parts=st.integers(1, 8),
        width=st.integers(1, 64),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_round_trip_property(self, n, density, parts, width, seed):
        rng = np.random.default_rng(seed)
        dense = (rng.random((n, n)) < density) * rng.random((n, n))
        coo = COOMatrix.from_dense(dense)
        bounds = np.linspace(0, n, parts + 1).astype(np.int64)
        b = BlockedCOO(coo, bounds, width)
        assert b.check_invariants()
        assert np.allclose(b.to_coo().to_dense(), dense)


class TestInvariantProperties:
    """check_invariants must hold for any valid build and catch any
    group-membership corruption (the autotuner's blocked storage rests
    on exactly these two guarantees)."""

    @given(
        n=st.integers(4, 50),
        nnz=st.integers(0, 150),
        parts=st.integers(1, 6),
        width=st.integers(1, 70),
        seed=st.integers(0, 500),
    )
    @settings(max_examples=60, deadline=None)
    def test_holds_for_any_build(self, n, nnz, parts, width, seed):
        rng = np.random.default_rng(seed)
        rows = rng.integers(0, n, size=nnz)
        cols = rng.integers(0, n, size=nnz)
        coo = COOMatrix(n, n, rows, cols, rng.random(nnz)).sum_duplicates()
        bounds = np.linspace(0, n, parts + 1).astype(np.int64)
        b = BlockedCOO(coo, bounds, width)
        assert b.check_invariants()
        assert b.nnz == coo.nnz

    @given(
        n=st.integers(8, 40),
        seed=st.integers(0, 500),
    )
    @settings(max_examples=40, deadline=None)
    def test_holds_for_schedule_stable_input(self, n, seed):
        """The autotuner feeds BlockedCOO matrices whose rows are sorted
        but whose within-row columns are NOT; the layout must still
        group correctly."""
        from repro.workloads.reorder import degree_order, permute_matrix

        rng = np.random.default_rng(seed)
        dense = (rng.random((n, n)) < 0.2) * rng.random((n, n))
        coo = COOMatrix.from_dense(dense)
        if coo.nnz == 0:
            return
        stable = permute_matrix(coo, degree_order(coo), stable=True)
        b = BlockedCOO(stable, np.asarray([0, n // 2, n]), 4)
        assert b.check_invariants()
        assert np.allclose(
            b.to_coo().to_dense(), stable.to_dense()
        )

    def test_detects_row_outside_partition(self, medium_coo):
        b = BlockedCOO(medium_coo, flat_bounds(medium_coo, 2, 4), 128)
        if b.nnz == 0:
            pytest.skip("empty fixture")
        # Teleport one entry's row out of its partition.
        lo, hi = b.partition_range(0)
        assert hi > lo
        b.rows[lo] = b.n_rows - 1
        assert not b.check_invariants()

    def test_detects_col_outside_vblock(self, medium_coo):
        b = BlockedCOO(medium_coo, flat_bounds(medium_coo, 2, 4), 128)
        target = None
        for p in range(b.n_partitions):
            for vb, rows, cols, _vals in b.iter_schedule(p):
                if vb == 0 and len(cols):
                    target = b.group_range(p, 0)
                    break
            if target:
                break
        assert target is not None
        b.cols[target[0]] = b.n_cols - 1  # out of vblock 0 for width 128
        assert not b.check_invariants()
