"""In-order pipeline validator: checks the analytic hide fractions."""

import pytest

from repro.hardware import DEFAULT_PARAMS
from repro.hardware.latency import hide_fraction
from repro.hardware.pipeline import Event, InOrderPipeline
from repro.hardware.profile import Pattern


@pytest.fixture
def pipe():
    return InOrderPipeline(DEFAULT_PARAMS)


class TestMechanics:
    def test_ops_are_single_cycle(self, pipe):
        assert pipe.run([Event.op()] * 10) == 10.0

    def test_unused_load_overlaps(self, pipe):
        # load issued, never used: only the tail waits for it
        cycles = pipe.run([Event.load(50.0)] + [Event.op()] * 100)
        assert cycles == pytest.approx(101.0)

    def test_immediate_use_exposes_latency(self, pipe):
        cycles = pipe.run([Event.load(50.0), Event.use()])
        assert cycles >= 50.0

    def test_dependent_chain_serialises(self, pipe):
        n = 20
        cycles = pipe.run([Event.load(30.0, dependent=True) for _ in range(n)])
        assert cycles >= (n - 1) * 30.0

    def test_mshr_limit_throttles(self):
        few = InOrderPipeline(DEFAULT_PARAMS.with_overrides(mshrs=1))
        many = InOrderPipeline(DEFAULT_PARAMS.with_overrides(mshrs=16))
        sched = [Event.load(40.0) for _ in range(32)]
        assert few.run(list(sched)) > 2 * many.run(list(sched))

    def test_store_buffer_hides_stores(self, pipe):
        cycles = pipe.run([Event.store() for _ in range(6)])
        assert cycles <= 6 + 2.0  # issue slots + final drain

    def test_store_buffer_backpressure(self, pipe):
        # hundreds of back-to-back stores drain at ~1/cycle anyway
        cycles = pipe.run([Event.store() for _ in range(200)])
        assert cycles < 250.0


class TestHideFractionValidation:
    """The analytic constants must sit inside what the pipeline measures.

    The analytic model is a *mean* over mixed access streams, so we
    bracket rather than pin: dependent accesses must expose nearly
    everything, independent gathers must expose something in between,
    and the ordering must match.
    """

    def test_dependent_exposes_nearly_all(self, pipe):
        exposed = pipe.measure_exposure(
            DEFAULT_PARAMS.dram_latency, n=50, pattern="dependent"
        )
        analytic = hide_fraction(Pattern.DEPENDENT, DEFAULT_PARAMS)
        assert exposed > 0.8
        assert abs(exposed - analytic) < 0.25

    def test_independent_gathers_partially_hidden(self, pipe):
        exposed = pipe.measure_exposure(
            DEFAULT_PARAMS.dram_latency, n=50, pattern="random", use_gap=2
        )
        # with 8 MSHRs and a short use distance the core still eats a
        # large visible share, but clearly less than pointer chasing
        dep = pipe.measure_exposure(
            DEFAULT_PARAMS.dram_latency, n=50, pattern="dependent"
        )
        assert exposed < dep
        analytic = hide_fraction(Pattern.RANDOM, DEFAULT_PARAMS)
        assert exposed > analytic / 2  # the model is not optimistic by 2x

    def test_ordering_matches_model(self, pipe):
        dep = pipe.measure_exposure(60.0, n=40, pattern="dependent")
        rand = pipe.measure_exposure(60.0, n=40, pattern="random", use_gap=4)
        a_dep = hide_fraction(Pattern.DEPENDENT, DEFAULT_PARAMS)
        a_rand = hide_fraction(Pattern.RANDOM, DEFAULT_PARAMS)
        assert (dep > rand) == (a_dep > a_rand)
