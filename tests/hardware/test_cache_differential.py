"""Differential tests: batched cache engines vs the reference simulator.

The batched numpy engine (and, where a host toolchain exists, the native
C kernel) must be *bit-identical* to :class:`ReferenceCacheBank` — same
per-access hit masks, same hit/miss/writeback counters, same behaviour
across ``reset_lines`` and scalar/batch mixing — on random traces with
mixed reads/writes over several bank counts and footprints.
"""

import numpy as np
import pytest

from repro.hardware import _native
from repro.hardware.cache import BankedCache, CacheBank, ReferenceCacheBank
from repro.hardware.params import DEFAULT_PARAMS

ENGINES = ["numpy", "native"]


@pytest.fixture(params=ENGINES)
def engine(request, monkeypatch):
    """Select which batched engine CacheBank.run_trace uses."""
    if request.param == "native":
        if not _native.available():
            pytest.skip("no host C toolchain: native engine unavailable")
    else:
        monkeypatch.setenv("REPRO_NATIVE", "0")
    return request.param


def counters(cache):
    return (cache.hits, cache.misses, cache.writebacks)


def random_trace(rng, n, footprint, write_fraction=0.3):
    addrs = rng.integers(0, footprint, n).astype(np.int64)
    writes = rng.random(n) < write_fraction
    return addrs, writes


class TestDifferential:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize(
        "sets_override,footprint",
        [
            (0, 8_000),        # single bank, moderate reuse
            (0, 300),          # pathological same-set reuse
            (16 * 64, 65_536), # 16-bank shared cache
        ],
    )
    def test_masks_and_counters_identical(self, engine, seed, sets_override, footprint):
        rng = np.random.default_rng(seed)
        ref = ReferenceCacheBank(DEFAULT_PARAMS, sets_override=sets_override)
        vec = CacheBank(DEFAULT_PARAMS, sets_override=sets_override)
        for _ in range(3):  # warm state carries across batches
            addrs, writes = random_trace(rng, 1500, footprint)
            m_ref = ref.run_trace(addrs, writes)
            m_vec = vec.run_trace(addrs, writes)
            np.testing.assert_array_equal(m_ref, m_vec)
            assert counters(ref) == counters(vec)

    @pytest.mark.parametrize("n_banks", [1, 2, 4, 16])
    def test_banked_cache_all_bank_counts(self, engine, n_banks):
        rng = np.random.default_rng(7)
        sets = DEFAULT_PARAMS.cache_sets_per_bank * n_banks
        ref = ReferenceCacheBank(DEFAULT_PARAMS, sets_override=sets)
        banked = BankedCache(n_banks, DEFAULT_PARAMS)
        addrs, writes = random_trace(rng, 4000, 4 * banked.capacity_words)
        m_ref = ref.run_trace(addrs, writes)
        m_vec = banked.run_trace(addrs, writes)
        np.testing.assert_array_equal(m_ref, m_vec)
        assert counters(ref) == counters(banked)

    def test_reset_lines_mid_stream(self, engine):
        rng = np.random.default_rng(3)
        ref = ReferenceCacheBank(DEFAULT_PARAMS)
        vec = CacheBank(DEFAULT_PARAMS)
        a1, w1 = random_trace(rng, 1000, 3000)
        ref.run_trace(a1, w1)
        vec.run_trace(a1, w1)
        ref.reset_lines()
        vec.reset_lines()
        assert counters(ref) == counters(vec)  # flush keeps counters
        a2, w2 = random_trace(rng, 1000, 3000)
        np.testing.assert_array_equal(ref.run_trace(a2, w2), vec.run_trace(a2, w2))
        assert counters(ref) == counters(vec)

    def test_scalar_and_batch_paths_interchangeable(self, engine):
        rng = np.random.default_rng(11)
        ref = ReferenceCacheBank(DEFAULT_PARAMS, sets_override=16)
        vec = CacheBank(DEFAULT_PARAMS, sets_override=16)
        for round_ in range(3):
            addrs, writes = random_trace(rng, 600, 2000)
            np.testing.assert_array_equal(
                ref.run_trace(addrs, writes), vec.run_trace(addrs, writes)
            )
            for a in rng.integers(0, 2000, 40):
                w = bool(rng.random() < 0.5)
                assert ref.access(int(a), w) == vec.access(int(a), w)
            assert counters(ref) == counters(vec)

    def test_trace_engine_style_addresses(self, engine):
        """Region-relocated addresses (offsets + k * 2^40) — the address
        shape the TraceEngine feeds through the shared caches."""
        rng = np.random.default_rng(5)
        ref = ReferenceCacheBank(DEFAULT_PARAMS, sets_override=4 * 64)
        vec = CacheBank(DEFAULT_PARAMS, sets_override=4 * 64)
        region = rng.integers(0, 4, 3000).astype(np.int64)
        addrs = region * (1 << 40) + rng.integers(0, 20_000, 3000)
        writes = rng.random(3000) < 0.4
        np.testing.assert_array_equal(
            ref.run_trace(addrs, writes), vec.run_trace(addrs, writes)
        )
        assert counters(ref) == counters(vec)

    def test_write_only_and_read_only_extremes(self, engine):
        rng = np.random.default_rng(13)
        for wf in (0.0, 1.0):
            ref = ReferenceCacheBank(DEFAULT_PARAMS, sets_override=32)
            vec = CacheBank(DEFAULT_PARAMS, sets_override=32)
            addrs, writes = random_trace(rng, 2000, 6000, write_fraction=wf)
            np.testing.assert_array_equal(
                ref.run_trace(addrs, writes), vec.run_trace(addrs, writes)
            )
            assert counters(ref) == counters(vec)
            if wf == 0.0:
                assert vec.writebacks == 0  # clean lines never write back

    def test_want_mask_false_returns_hit_count(self, engine):
        rng = np.random.default_rng(17)
        a = CacheBank(DEFAULT_PARAMS, sets_override=32)
        b = CacheBank(DEFAULT_PARAMS, sets_override=32)
        addrs, writes = random_trace(rng, 2000, 6000)
        mask = a.run_trace(addrs, writes)
        nh = b.run_trace(addrs, writes, want_mask=False)
        assert nh == int(mask.sum())
        assert counters(a) == counters(b)
        np.testing.assert_array_equal(a._tags, b._tags)


class TestEnginesAgreeWithEachOther:
    def test_numpy_vs_native_state(self, monkeypatch):
        """Both batched paths must leave identical tag/dirty matrices."""
        if not _native.available():
            pytest.skip("no host C toolchain: native engine unavailable")
        rng = np.random.default_rng(23)
        addrs, writes = random_trace(rng, 5000, 50_000)
        monkeypatch.setenv("REPRO_NATIVE", "0")
        vec = CacheBank(DEFAULT_PARAMS, sets_override=256)
        m_numpy = vec.run_trace(addrs, writes)
        monkeypatch.setenv("REPRO_NATIVE", "1")
        nat = CacheBank(DEFAULT_PARAMS, sets_override=256)
        m_native = nat.run_trace(addrs, writes)
        np.testing.assert_array_equal(m_numpy, m_native)
        assert counters(vec) == counters(nat)
        np.testing.assert_array_equal(vec._tags, nat._tags)
        np.testing.assert_array_equal(
            vec._dirty.astype(bool), nat._dirty.astype(bool)
        )
