"""Property-based tests of the LRU cache simulator and the flux solver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import DEFAULT_PARAMS
from repro.hardware.analytic import _Entry, _solve_level
from repro.hardware.cache import BankedCache, CacheBank
from repro.hardware.profile import Pattern, Region


class _ReferenceLRU:
    """Brain-dead fully-correct LRU reference (list of lines, per set)."""

    def __init__(self, n_sets, ways, line_words):
        self.n_sets, self.ways, self.line_words = n_sets, ways, line_words
        self.sets = [[] for _ in range(n_sets)]

    def access(self, addr):
        line = addr // self.line_words
        s = self.sets[line % self.n_sets]
        if line in s:
            s.remove(line)
            s.append(line)
            return True
        if len(s) >= self.ways:
            s.pop(0)
        s.append(line)
        return False


class TestLRUAgainstReference:
    @given(st.lists(st.integers(0, 4000), min_size=1, max_size=400))
    @settings(max_examples=80, deadline=None)
    def test_hit_sequence_matches(self, addrs):
        ours = CacheBank(DEFAULT_PARAMS)
        ref = _ReferenceLRU(
            ours.n_sets, ours.ways, DEFAULT_PARAMS.cache_line_words
        )
        for a in addrs:
            assert ours.access(a) == ref.access(a)

    @given(st.lists(st.integers(0, 100_000), min_size=1, max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_counters_consistent(self, addrs):
        c = CacheBank(DEFAULT_PARAMS)
        for a in addrs:
            c.access(a)
        assert c.hits + c.misses == len(addrs)
        assert 0.0 <= c.hit_rate <= 1.0

    @given(st.lists(st.integers(0, 2000), min_size=1, max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_banked_trace_equals_loop(self, addrs):
        a = BankedCache(2, DEFAULT_PARAMS)
        b = BankedCache(2, DEFAULT_PARAMS)
        arr = np.asarray(addrs, dtype=np.int64)
        writes = np.zeros(len(arr), dtype=bool)
        mask = a.run_trace(arr, writes)
        loop = [b.access(int(x)) for x in arr]
        assert list(mask) == loop


class TestFluxSolver:
    def entry(self, count, footprint, pattern=Pattern.RANDOM, passes=1):
        return _Entry(Region.VECTOR_IN, count, footprint, pattern, passes)

    @given(
        count=st.floats(1, 1e6),
        footprint=st.floats(1, 1e7),
        capacity=st.floats(64, 1e6),
    )
    @settings(max_examples=100, deadline=None)
    def test_misses_bounded(self, count, footprint, capacity):
        e = self.entry(count, footprint)
        _solve_level([e], capacity, DEFAULT_PARAMS)
        assert 0.0 <= e.miss <= count + 1e-9

    @given(
        count=st.floats(100, 1e5),
        footprint=st.floats(1000, 1e6),
    )
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_capacity(self, count, footprint):
        small = self.entry(count, footprint)
        big = self.entry(count, footprint)
        _solve_level([small], 1024.0, DEFAULT_PARAMS)
        _solve_level([big], 64 * 1024.0, DEFAULT_PARAMS)
        assert big.miss <= small.miss + 1e-6

    def test_tiny_footprint_always_hits_after_cold(self):
        e = self.entry(100_000, 64)
        _solve_level([e], 4096, DEFAULT_PARAMS)
        assert e.miss <= 64 / DEFAULT_PARAMS.cache_line_words + 1.0

    def test_streaming_competitor_degrades_random_stream(self):
        alone = self.entry(50_000, 8_000)
        _solve_level([alone], 8_192, DEFAULT_PARAMS)
        shared = self.entry(50_000, 8_000)
        stream = _Entry(
            Region.MATRIX, 150_000, 150_000, Pattern.SEQUENTIAL, 1
        )
        _solve_level([shared, stream], 8_192, DEFAULT_PARAMS)
        assert shared.miss >= alone.miss

    def test_empty_level(self):
        e = self.entry(0, 0)
        _solve_level([e], 1024, DEFAULT_PARAMS)
        assert e.miss == 0.0
