"""Latency-composition helper tests (shared by both fidelity modes)."""

import pytest

from repro.hardware import DEFAULT_PARAMS
from repro.hardware.latency import compose_latency, hide_fraction
from repro.hardware.profile import Pattern


class TestHideFractions:
    def test_ordering(self):
        """Prefetchable < independent gather < pointer chase (visible)."""
        seq = hide_fraction(Pattern.SEQUENTIAL, DEFAULT_PARAMS)
        rand = hide_fraction(Pattern.RANDOM, DEFAULT_PARAMS)
        dep = hide_fraction(Pattern.DEPENDENT, DEFAULT_PARAMS)
        assert seq < rand < dep

    def test_bounds(self):
        for p in (Pattern.SEQUENTIAL, Pattern.RANDOM, Pattern.DEPENDENT):
            assert 0.0 <= hide_fraction(p, DEFAULT_PARAMS) <= 1.0


class TestCompose:
    def test_all_hits_cost_base(self):
        lat = compose_latency(1.5, 1.0, 1.0, Pattern.RANDOM, DEFAULT_PARAMS)
        assert lat == pytest.approx(1.5)

    def test_l2_hits_add_visible_fraction(self):
        lat = compose_latency(1.0, 0.0, 1.0, Pattern.DEPENDENT, DEFAULT_PARAMS)
        expected = 1.0 + 0.9 * (DEFAULT_PARAMS.l2_hit_latency - 1.0)
        assert lat == pytest.approx(expected)

    def test_dram_misses_dominate(self):
        all_dram = compose_latency(1.0, 0.0, 0.0, Pattern.DEPENDENT, DEFAULT_PARAMS)
        assert all_dram > 0.8 * DEFAULT_PARAMS.dram_latency * 0.9

    def test_monotone_in_hit_rates(self):
        worse = compose_latency(1.0, 0.2, 0.2, Pattern.RANDOM, DEFAULT_PARAMS)
        better = compose_latency(1.0, 0.8, 0.8, Pattern.RANDOM, DEFAULT_PARAMS)
        assert better < worse

    def test_prefetch_hides_stream_misses(self):
        seq = compose_latency(1.0, 0.0, 0.0, Pattern.SEQUENTIAL, DEFAULT_PARAMS)
        dep = compose_latency(1.0, 0.0, 0.0, Pattern.DEPENDENT, DEFAULT_PARAMS)
        assert seq < dep / 3
