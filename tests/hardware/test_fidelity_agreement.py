"""Cross-fidelity agreement: trace replay and the analytic model must
rank configurations the same way, or the decision layer would behave
differently at different scales."""

import numpy as np
import pytest

from repro.formats import CSCMatrix, SparseVector
from repro.hardware import Geometry, HWMode, TransmuterSystem
from repro.spmv import inner_product, outer_product, spmv_semiring
from repro.workloads import uniform_random


@pytest.fixture(scope="module")
def setting():
    coo = uniform_random(3000, nnz=40_000, seed=31)
    csc = CSCMatrix.from_coo(coo)
    return coo, csc


def price(profile, geom, fidelity):
    return TransmuterSystem(geom, fidelity=fidelity).run(
        profile, with_energy=False
    ).cycles


class TestSoftwareChoiceAgreement:
    @pytest.mark.parametrize("density", [0.002, 0.3])
    def test_ip_vs_op_ranking(self, setting, density):
        coo, csc = setting
        geom = Geometry(2, 4)
        rng = np.random.default_rng(7)
        idx = rng.choice(coo.n_cols, max(1, int(density * coo.n_cols)), replace=False)
        sv = SparseVector(coo.n_cols, idx, rng.uniform(0.5, 1.5, len(idx)))
        sr = spmv_semiring()
        ip = inner_product(
            coo, sv.to_dense(), sr, geom, HWMode.SC, with_trace=True
        )
        op = outer_product(csc, sv, sr, geom, HWMode.PC, with_trace=True)
        verdicts = {}
        for fidelity in ("analytic", "trace"):
            verdicts[fidelity] = price(ip.profile, geom, fidelity) > price(
                op.profile, geom, fidelity
            )
        assert verdicts["analytic"] == verdicts["trace"]

    def test_cycles_within_factor_three_for_op(self, setting):
        coo, csc = setting
        geom = Geometry(2, 4)
        rng = np.random.default_rng(8)
        idx = rng.choice(coo.n_cols, 60, replace=False)
        sv = SparseVector(coo.n_cols, idx, rng.uniform(0.5, 1.5, 60))
        op = outer_product(
            csc, sv, spmv_semiring(), geom, HWMode.PS, with_trace=True
        )
        a = price(op.profile, geom, "analytic")
        t = price(op.profile, geom, "trace")
        assert 1 / 3 < a / t < 3
