"""Behavioural tests of the analytic performance model.

These pin down the *mechanisms* the reconfiguration thresholds rely on
(Section III-C), not absolute cycle counts.
"""

import pytest

from repro.hardware import (
    AccessStream,
    DEFAULT_PARAMS,
    Geometry,
    HWMode,
    KernelProfile,
    PEProfile,
    Pattern,
    Region,
    TileProfile,
)
from repro.hardware.analytic import AnalyticModel, _miss_bearing


def make_profile(mode, streams_per_pe, geometry, ops=1000.0, **tile_kw):
    tiles = [
        TileProfile(
            pes=[
                PEProfile(compute_ops=ops, streams=[AccessStream(**s) for s in streams_per_pe])
                for _ in range(geometry.pes_per_tile)
            ],
            **tile_kw,
        )
        for _ in range(geometry.tiles)
    ]
    return KernelProfile(
        algorithm="ip" if mode in (HWMode.SC, HWMode.SCS) else "op",
        mode=mode,
        tiles=tiles,
    )


@pytest.fixture
def geom():
    return Geometry(2, 8)


@pytest.fixture
def model(geom):
    return AnalyticModel(geom, DEFAULT_PARAMS)


def cycles(model, profile):
    return model.evaluate(profile).cycles


class TestBasics:
    def test_compute_only(self, model, geom):
        p = make_profile(HWMode.SC, [], geom, ops=500.0)
        r = model.evaluate(p)
        assert r.cycles == pytest.approx(500.0)

    def test_spm_stream_costs_fixed_latency(self, model, geom):
        s = dict(
            region=Region.VECTOR_IN,
            count=1000,
            pattern=Pattern.RANDOM,
            footprint=100,
            in_spm=True,
        )
        p = make_profile(HWMode.SCS, [s], geom, ops=0.0)
        r = model.evaluate(p)
        assert r.counters.spm_accesses == 1000 * geom.n_pes
        # every access at the fixed SPM latency, no DRAM traffic
        assert r.counters.dram_words == 0

    def test_small_random_footprint_hits(self, model, geom):
        s = dict(
            region=Region.VECTOR_IN,
            count=10000,
            pattern=Pattern.RANDOM,
            footprint=256,
            shared_footprint=True,
        )
        p = make_profile(HWMode.SC, [s], geom, ops=0.0)
        r = model.evaluate(p)
        assert r.counters.l1_hit_rate > 0.9

    def test_huge_random_footprint_misses(self, model, geom):
        s = dict(
            region=Region.VECTOR_IN,
            count=10000,
            pattern=Pattern.RANDOM,
            footprint=10_000_000,
            shared_footprint=True,
        )
        p = make_profile(HWMode.SC, [s], geom, ops=0.0)
        r = model.evaluate(p)
        assert r.counters.l1_hit_rate < 0.2

    def test_sequential_stream_mostly_hits(self, model, geom):
        s = dict(
            region=Region.MATRIX,
            count=16000,
            pattern=Pattern.SEQUENTIAL,
            footprint=16000,
        )
        p = make_profile(HWMode.SC, [s], geom, ops=0.0)
        r = model.evaluate(p)
        # one miss per 16-word line
        assert r.counters.l1_hit_rate == pytest.approx(1 - 1 / 16, abs=0.01)

    def test_bandwidth_floor_binds(self, model, geom):
        s = dict(
            region=Region.MATRIX,
            count=1_000_000,
            pattern=Pattern.SEQUENTIAL,
            footprint=1_000_000,
        )
        p = make_profile(HWMode.SC, [s], geom, ops=0.0)
        r = model.evaluate(p)
        assert r.bandwidth_floor_cycles > 0
        assert r.cycles >= r.bandwidth_floor_cycles


class TestMechanisms:
    def test_dependent_pattern_stalls_more_than_sequential(self, model, geom):
        base = dict(region=Region.MATRIX, count=5000, footprint=500_000)
        seq = make_profile(
            HWMode.PC, [dict(base, pattern=Pattern.SEQUENTIAL)], geom, ops=0.0
        )
        dep = make_profile(
            HWMode.PC, [dict(base, pattern=Pattern.DEPENDENT)], geom, ops=0.0
        )
        assert cycles(model, dep) > 2 * cycles(model, seq)

    def test_stores_cheaper_than_loads(self, model, geom):
        base = dict(
            region=Region.VECTOR_OUT,
            count=5000,
            pattern=Pattern.RANDOM,
            footprint=500_000,
        )
        loads = make_profile(HWMode.PC, [base], geom, ops=0.0)
        stores = make_profile(HWMode.PC, [dict(base, writes=5000)], geom, ops=0.0)
        assert cycles(model, stores) < cycles(model, loads)

    def test_distinct_touches_caps_misses(self, model, geom):
        base = dict(
            region=Region.VECTOR_OUT,
            count=50000,
            pattern=Pattern.RANDOM,
            footprint=500_000,
        )
        raw = make_profile(HWMode.PC, [base], geom, ops=0.0)
        credited = make_profile(
            HWMode.PC, [dict(base, distinct_touches=500.0)], geom, ops=0.0
        )
        assert cycles(model, credited) < 0.2 * cycles(model, raw)

    def test_fill_granule_reduces_dram_traffic(self, model, geom):
        base = dict(
            region=Region.VECTOR_OUT,
            count=5000,
            pattern=Pattern.RANDOM,
            footprint=5_000_000,
        )
        line = model.evaluate(make_profile(HWMode.PC, [base], geom, ops=0.0))
        word = model.evaluate(
            make_profile(HWMode.PC, [dict(base, fill_granule=1)], geom, ops=0.0)
        )
        assert word.counters.dram_words < line.counters.dram_words / 8

    def test_lcp_serialises_tile(self, model, geom):
        p_fast = make_profile(HWMode.PC, [], geom, ops=100.0)
        p_slow = make_profile(
            HWMode.PC, [], geom, ops=100.0, lcp_serial_elements=10_000.0
        )
        assert cycles(model, p_slow) > cycles(model, p_fast) + 1000

    def test_lcp_rmw_rows_dominate(self, model, geom):
        p = make_profile(HWMode.PC, [], geom, ops=0.0, lcp_output_words=2000.0)
        # 1000 output rows x lcp_rmw_cycles_per_row
        assert cycles(model, p) == pytest.approx(
            1000 * DEFAULT_PARAMS.lcp_rmw_cycles_per_row, rel=0.1
        )

    def test_shared_spm_fill_charged_to_every_pe(self, model, geom):
        p = make_profile(HWMode.SCS, [], geom, ops=0.0, spm_fill_words=32000.0)
        r = model.evaluate(p)
        expected = (
            32000.0
            * max(
                DEFAULT_PARAMS.spm_fill_cycles_per_word,
                geom.tiles / DEFAULT_PARAMS.dram_words_per_cycle,
            )
            * (1 - DEFAULT_PARAMS.spm_fill_overlap)
        )
        assert max(r.tile_reports[0].pe_cycles) == pytest.approx(expected)
        # but the DRAM traffic is counted once per tile
        assert r.counters.dram_words == pytest.approx(32000.0 * geom.tiles)


class TestReconfigurationDirections:
    """The decision-tree-relevant orderings the model must produce."""

    def _vector_gather(self, density, footprint, in_spm):
        count = 20000
        return [
            dict(
                region=Region.MATRIX,
                count=3 * count,
                pattern=Pattern.SEQUENTIAL,
                footprint=3 * count,
            ),
            dict(
                region=Region.VECTOR_IN,
                count=count,
                pattern=Pattern.RANDOM,
                footprint=footprint,
                in_spm=in_spm,
                shared_footprint=True,
            ),
            dict(
                region=Region.VECTOR_OUT,
                count=2 * int(count * density),
                pattern=Pattern.RANDOM,
                footprint=4000,
                writes=int(count * density),
                fill_granule=1,
            ),
        ]

    def test_scs_beats_sc_under_heavy_output_pressure(self, model, geom):
        """Dense vectors: output traffic evicts vector lines in SC."""
        fp = geom.l1_tile_words(DEFAULT_PARAMS)
        sc = make_profile(
            HWMode.SC, self._vector_gather(1.0, fp, False), geom, ops=0.0
        )
        scs = make_profile(
            HWMode.SCS, self._vector_gather(1.0, fp, True), geom, ops=0.0
        )
        assert cycles(model, scs) < cycles(model, sc)

    def test_ps_beats_pc_when_heap_spills(self, model, geom):
        heap_words = 8 * geom.l1_pe_words(DEFAULT_PARAMS)
        stream = dict(
            region=Region.HEAP,
            count=100_000,
            pattern=Pattern.DEPENDENT,
            footprint=heap_words,
        )
        pc = make_profile(HWMode.PC, [stream], geom, ops=0.0)
        ps = make_profile(HWMode.PS, [dict(stream, in_spm=True)], geom, ops=0.0)
        assert cycles(model, ps) < cycles(model, pc)

    def test_pc_beats_ps_when_heap_fits(self, model, geom):
        heap_words = 100
        stream = dict(
            region=Region.HEAP,
            count=100_000,
            pattern=Pattern.DEPENDENT,
            footprint=heap_words,
        )
        pc = make_profile(HWMode.PC, [stream], geom, ops=0.0)
        ps = make_profile(HWMode.PS, [dict(stream, in_spm=True)], geom, ops=0.0)
        # PS pays the SPM management overhead with nothing to win
        assert cycles(model, pc) < cycles(model, ps)


class TestMissBearing:
    def test_writes_excluded(self):
        s = AccessStream(Region.VECTOR_OUT, 100, Pattern.RANDOM, 10, writes=40)
        assert _miss_bearing(s) == 60

    def test_distinct_touches_cap(self):
        s = AccessStream(
            Region.VECTOR_OUT, 100, Pattern.RANDOM, 10, distinct_touches=25
        )
        assert _miss_bearing(s) == 25
