"""Counter/report plumbing tests."""

import pytest

from repro.hardware import MemCounters, RunReport, TileReport


class TestMemCounters:
    def test_add_accumulates(self):
        a = MemCounters(pe_ops=10, l1_accesses=100, l1_hits=80)
        b = MemCounters(pe_ops=5, l1_accesses=50, l1_hits=50, dram_words=7)
        a.add(b)
        assert a.pe_ops == 15
        assert a.l1_accesses == 150
        assert a.l1_hits == 130
        assert a.dram_words == 7

    def test_hit_rates(self):
        c = MemCounters(l1_accesses=200, l1_hits=150, l2_accesses=50, l2_hits=10)
        assert c.l1_hit_rate == pytest.approx(0.75)
        assert c.l2_hit_rate == pytest.approx(0.2)

    def test_idle_hit_rates_are_one(self):
        c = MemCounters()
        assert c.l1_hit_rate == 1.0
        assert c.l2_hit_rate == 1.0


class TestTileReport:
    def test_cycles_is_slowest_pe_plus_lcp(self):
        t = TileReport(pe_cycles=[100.0, 250.0, 180.0], lcp_cycles=40.0)
        assert t.cycles == 290.0

    def test_imbalance(self):
        t = TileReport(pe_cycles=[100.0, 300.0])
        assert t.imbalance == pytest.approx(1.5)
        assert TileReport(pe_cycles=[]).imbalance == 1.0

    def test_empty_tile(self):
        assert TileReport(pe_cycles=[], lcp_cycles=5.0).cycles == 5.0


class TestRunReport:
    def test_time_conversions(self):
        r = RunReport(cycles=2e9, counters=MemCounters())
        assert r.time_s == pytest.approx(2.0)
        assert r.seconds(2e9) == pytest.approx(1.0)

    def test_bandwidth_bound_flag(self):
        r = RunReport(cycles=100.0, counters=MemCounters(), bandwidth_floor_cycles=100.0)
        assert r.bandwidth_bound
        r2 = RunReport(cycles=200.0, counters=MemCounters(), bandwidth_floor_cycles=50.0)
        assert not r2.bandwidth_bound

    def test_summary_without_energy(self):
        r = RunReport(cycles=1000.0, counters=MemCounters())
        assert "uJ" not in r.summary()
        r.energy_j = 1e-6
        assert "uJ" in r.summary()
