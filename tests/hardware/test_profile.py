"""Profile-contract tests (AccessStream / PETrace / KernelProfile)."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.hardware import (
    AccessStream,
    HWMode,
    KernelProfile,
    PEProfile,
    PETrace,
    Pattern,
    Region,
    TileProfile,
)


class TestAccessStream:
    def test_rejects_unknown_pattern(self):
        with pytest.raises(SimulationError):
            AccessStream(Region.MATRIX, 10, "strided", 10)

    def test_rejects_negative_counts(self):
        with pytest.raises(SimulationError):
            AccessStream(Region.MATRIX, -1, Pattern.RANDOM, 10)

    def test_defaults(self):
        s = AccessStream(Region.HEAP, 10, Pattern.DEPENDENT, 20)
        assert not s.in_spm
        assert not s.shared_footprint
        assert s.passes == 1
        assert s.writes == 0.0
        assert s.distinct_touches is None
        assert s.fill_granule == 0


class TestPETrace:
    def test_rejects_mismatched_lengths(self):
        with pytest.raises(SimulationError):
            PETrace(
                np.zeros(2, dtype=np.int8),
                np.zeros(3, dtype=np.int64),
                np.zeros(2, dtype=bool),
            )

    def test_concat(self):
        a = PETrace(
            np.zeros(2, dtype=np.int8),
            np.asarray([1, 2], dtype=np.int64),
            np.zeros(2, dtype=bool),
        )
        b = PETrace(
            np.ones(1, dtype=np.int8),
            np.asarray([9], dtype=np.int64),
            np.ones(1, dtype=bool),
        )
        c = PETrace.concat([a, b])
        assert c.n_accesses == 3
        assert list(c.addrs) == [1, 2, 9]

    def test_concat_empty(self):
        assert PETrace.concat([]).n_accesses == 0


class TestKernelProfile:
    def make(self, algorithm="ip", mode=HWMode.SC):
        pe = PEProfile(
            compute_ops=5.0,
            streams=[AccessStream(Region.MATRIX, 7, Pattern.SEQUENTIAL, 7)],
        )
        return KernelProfile(algorithm, mode, [TileProfile(pes=[pe, pe])])

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(SimulationError):
            self.make(algorithm="gemm")

    def test_rejects_empty_tiles(self):
        with pytest.raises(SimulationError):
            KernelProfile("ip", HWMode.SC, [])

    def test_totals(self):
        p = self.make()
        assert p.total_compute_ops == 10.0
        assert p.total_accesses == 14.0
        assert p.n_tiles == 1

    def test_has_traces(self):
        p = self.make()
        assert not p.has_traces()
        for pe in p.tiles[0].pes:
            pe.trace = PETrace(
                np.zeros(0, dtype=np.int8),
                np.zeros(0, dtype=np.int64),
                np.zeros(0, dtype=bool),
            )
        assert p.has_traces()

    def test_stream_lookup(self):
        pe = self.make().tiles[0].pes[0]
        assert pe.stream(Region.MATRIX) is not None
        assert pe.stream(Region.HEAP) is None
