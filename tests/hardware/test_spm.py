"""Scratchpad model tests."""

import pytest

from repro.errors import SimulationError
from repro.hardware.spm import Scratchpad


class TestAllocation:
    def test_allocate_and_release(self):
        s = Scratchpad(1000)
        assert s.allocate("heap", 400) == 400
        assert s.used_words == 400
        assert s.free_words == 600
        s.release("heap")
        assert s.used_words == 0

    def test_oversubscription_clamped(self):
        """PS lets the sorted list spill; allocation grants what fits."""
        s = Scratchpad(100)
        assert s.allocate("heap", 250) == 100
        assert s.free_words == 0

    def test_double_allocation_rejected(self):
        s = Scratchpad(100)
        s.allocate("a", 10)
        with pytest.raises(SimulationError):
            s.allocate("a", 10)

    def test_release_unknown_rejected(self):
        with pytest.raises(SimulationError):
            Scratchpad(10).release("nope")

    def test_negative_rejected(self):
        with pytest.raises(SimulationError):
            Scratchpad(-1)
        with pytest.raises(SimulationError):
            Scratchpad(10).allocate("x", -5)

    def test_resident_fraction(self):
        s = Scratchpad(100)
        s.allocate("heap", 300)
        assert s.resident_fraction("heap", 300) == pytest.approx(1 / 3)
        assert s.resident_fraction("heap", 0) == 1.0

    def test_access_and_fill_counters(self):
        s = Scratchpad(100)
        s.access(5)
        s.fill(64)
        assert s.accesses == 5
        assert s.fill_words == 64


class TestHeapResidency:
    """The level-wise spill model behind 'the majority of comparisons
    and swaps still happen in the SPM' (Section III-A)."""

    def test_fits_entirely(self):
        assert Scratchpad.heap_spm_access_fraction(100, 1024) == 1.0

    def test_no_spm(self):
        assert Scratchpad.heap_spm_access_fraction(100, 0) == 0.0

    def test_empty_heap(self):
        assert Scratchpad.heap_spm_access_fraction(0, 10) == 1.0

    def test_majority_resident_on_mild_spill(self):
        # heap 2x the SPM: only the last level spills
        f = Scratchpad.heap_spm_access_fraction(2048, 1024)
        assert f > 0.5

    def test_fraction_decreases_with_heap_size(self):
        fractions = [
            Scratchpad.heap_spm_access_fraction(words, 256)
            for words in (256, 1024, 16384, 1 << 20)
        ]
        assert fractions == sorted(fractions, reverse=True)
        assert fractions[-1] > 0.0  # top levels always resident
