"""Geometry (AxB systems) tests."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware import DEFAULT_PARAMS, Geometry


class TestParsing:
    def test_parse(self):
        g = Geometry.parse("8x16")
        assert g.tiles == 8
        assert g.pes_per_tile == 16

    def test_parse_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            Geometry.parse("8by16")

    def test_parse_rejects_none(self):
        with pytest.raises(ConfigurationError):
            Geometry.parse(None)

    def test_name_round_trip(self):
        assert Geometry.parse("4x32").name == "4x32"

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            Geometry(0, 4)
        with pytest.raises(ConfigurationError):
            Geometry(4, -1)


class TestCapacities:
    def test_n_pes(self):
        assert Geometry(8, 16).n_pes == 128

    def test_one_bank_per_pe(self):
        g = Geometry(4, 8)
        assert g.l1_banks_per_tile == 8
        assert g.l2_banks_per_tile == 8

    def test_l1_tile_words(self):
        # 16 banks x 1024 words
        assert Geometry(4, 16).l1_tile_words(DEFAULT_PARAMS) == 16384

    def test_l1_pe_words_is_one_bank(self):
        assert Geometry(4, 16).l1_pe_words(DEFAULT_PARAMS) == 1024

    def test_l2_total_words(self):
        assert Geometry(2, 4).l2_total_words(DEFAULT_PARAMS) == 2 * 4 * 1024

    def test_onchip_total_is_l1_plus_l2(self):
        g = Geometry(2, 4)
        assert g.onchip_total_words(DEFAULT_PARAMS) == (
            2 * (g.l1_tile_words(DEFAULT_PARAMS) + g.l2_tile_words(DEFAULT_PARAMS))
        )

    def test_capacity_scales_with_pes(self):
        assert Geometry(4, 32).onchip_total_words() == 2 * Geometry(
            4, 16
        ).onchip_total_words()
