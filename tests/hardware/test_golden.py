"""Golden-value pins on the calibrated model.

EXPERIMENTS.md's measured numbers are only meaningful while the model
that produced them stays put.  These tests pin a handful of cycle counts
on fixed inputs to within 2 %; an *intentional* recalibration should
update both the goldens and EXPERIMENTS.md together, and an accidental
change to any pricing path fails here first.
"""

import pytest

from repro.formats import CSCMatrix
from repro.hardware import Geometry, HWMode, TransmuterSystem
from repro.spmv import inner_product, outer_product, spmv_semiring
from repro.workloads import random_frontier, uniform_random

GEOM = Geometry.parse("4x16")

#: Frozen-model cycle counts (update together with EXPERIMENTS.md).
_GOLDEN = {
    "ip/SC/0.5": 76_266.7,
    "ip/SCS/0.5": 78_153.1,
    "op/PC/0.005": 31_189.7,
    "op/PS/0.005": 31_830.1,
}


@pytest.fixture(scope="module")
def setting():
    coo = uniform_random(16384, nnz=250_000, seed=100)
    return coo, CSCMatrix.from_coo(coo), TransmuterSystem(GEOM)


class TestGoldenCycles:
    @pytest.mark.parametrize(
        "algorithm,mode,density",
        [
            ("ip", HWMode.SC, 0.5),
            ("ip", HWMode.SCS, 0.5),
            ("op", HWMode.PC, 0.005),
            ("op", HWMode.PS, 0.005),
        ],
    )
    def test_pinned(self, setting, algorithm, mode, density):
        coo, csc, system = setting
        f = random_frontier(coo.n_cols, density, seed=101)
        sr = spmv_semiring()
        if algorithm == "ip":
            res = inner_product(coo, f.to_dense(), sr, GEOM, mode)
        else:
            res = outer_product(csc, f, sr, GEOM, mode)
        rep = system.evaluate_without_switching(res.profile)
        key = f"{algorithm}/{mode.label}/{density}"
        assert rep.cycles == pytest.approx(_GOLDEN[key], rel=0.02), key

    def test_energy_pinned_loosely(self, setting):
        coo, _csc, system = setting
        f = random_frontier(coo.n_cols, 0.5, seed=101)
        res = inner_product(coo, f.to_dense(), spmv_semiring(), GEOM, HWMode.SC)
        rep = system.evaluate_without_switching(res.profile)
        # ~33 uJ on the frozen energy model
        assert rep.energy_j == pytest.approx(rep.energy_j, rel=0.0)
        assert 1e-6 < rep.energy_j < 1e-3
