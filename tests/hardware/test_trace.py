"""Trace-replay engine tests."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.hardware import (
    AccessStream,
    DEFAULT_PARAMS,
    Geometry,
    HWMode,
    KernelProfile,
    PEProfile,
    PETrace,
    Pattern,
    Region,
    TileProfile,
)
from repro.hardware.trace import TraceEngine


def trace_profile(mode, geometry, addr_lists, region=Region.VECTOR_IN, in_spm=False):
    """One tile per geometry row, each PE replaying its address list."""
    tiles = []
    idx = 0
    for _t in range(geometry.tiles):
        pes = []
        for _p in range(geometry.pes_per_tile):
            addrs = np.asarray(addr_lists[idx % len(addr_lists)], dtype=np.int64)
            idx += 1
            tr = PETrace(
                regions=np.full(len(addrs), int(region), dtype=np.int8),
                addrs=addrs,
                writes=np.zeros(len(addrs), dtype=bool),
            )
            pes.append(
                PEProfile(
                    compute_ops=10.0,
                    streams=[
                        AccessStream(
                            region,
                            len(addrs),
                            Pattern.RANDOM,
                            footprint=max(len(set(addrs.tolist())), 1),
                            in_spm=in_spm,
                        )
                    ],
                    trace=tr,
                )
            )
        tiles.append(TileProfile(pes=pes))
    return KernelProfile(
        algorithm="ip" if mode in (HWMode.SC, HWMode.SCS) else "op",
        mode=mode,
        tiles=tiles,
    )


@pytest.fixture
def geom():
    return Geometry(2, 2)


@pytest.fixture
def engine(geom):
    return TraceEngine(geom, DEFAULT_PARAMS)


class TestReplay:
    def test_requires_traces(self, engine, geom):
        p = KernelProfile(
            "ip",
            HWMode.SC,
            [TileProfile(pes=[PEProfile()])],
        )
        with pytest.raises(SimulationError):
            engine.evaluate(p)

    def test_repeated_address_hits(self, engine, geom):
        p = trace_profile(HWMode.SC, geom, [[0] * 100])
        r = engine.evaluate(p)
        assert r.counters.l1_hit_rate > 0.95
        assert r.fidelity == "trace"

    def test_streaming_addresses_miss_per_line(self, engine, geom):
        # every PE streams the same addresses; under the shared L1 the
        # tile takes one miss per line, so the per-access miss rate is
        # 1/(line_words * pes_per_tile)
        p = trace_profile(HWMode.SC, geom, [list(range(1600))])
        r = engine.evaluate(p)
        expected = 1 - 1 / (16 * geom.pes_per_tile)
        assert r.counters.l1_hit_rate == pytest.approx(expected, abs=0.02)

    def test_spm_accesses_bypass_caches(self, engine, geom):
        p = trace_profile(HWMode.SCS, geom, [[0, 1, 2] * 10], in_spm=True)
        r = engine.evaluate(p)
        assert r.counters.spm_accesses == 30 * geom.n_pes
        assert r.counters.l1_accesses == 0

    def test_ps_has_no_l1_cache(self, engine, geom):
        # under PS a cache-path stream goes straight to L2
        p = trace_profile(HWMode.PS, geom, [[0] * 50])
        r = engine.evaluate(p)
        assert r.counters.l1_hits == 0
        assert r.counters.l2_accesses == 50 * geom.n_pes

    def test_shared_pes_share_lines(self, geom):
        """Two PEs touching the same words: the second finds them hot."""
        engine = TraceEngine(geom, DEFAULT_PARAMS)
        same = trace_profile(HWMode.SC, geom, [list(range(0, 512))])
        disjoint = trace_profile(
            HWMode.SC,
            geom,
            [
                list(range(0, 512)),
                list(range(10000, 10512)),
                list(range(20000, 20512)),
                list(range(30000, 30512)),
            ],
        )
        r_same = engine.evaluate(same)
        r_disj = TraceEngine(geom, DEFAULT_PARAMS).evaluate(disjoint)
        assert r_same.counters.l1_hit_rate > r_disj.counters.l1_hit_rate


class TestAgainstAnalytic:
    """Both fidelity modes must rank configurations the same way on the
    real kernels (the decision layer depends on it)."""

    def test_ip_cycles_within_factor_two(self, medium_coo):
        from repro.hardware import TransmuterSystem
        from repro.spmv import inner_product, spmv_semiring
        import numpy as np

        geom = Geometry(2, 4)
        v = np.zeros(medium_coo.n_cols)
        v[::3] = 1.0
        res = inner_product(
            medium_coo, v, spmv_semiring(), geom, HWMode.SC, with_trace=True
        )
        analytic = TransmuterSystem(geom, fidelity="analytic").run(res.profile)
        trace = TransmuterSystem(geom, fidelity="trace").run(res.profile)
        ratio = analytic.cycles / trace.cycles
        assert 0.5 < ratio < 2.0
