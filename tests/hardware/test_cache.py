"""Set-associative LRU cache simulator tests."""

import numpy as np
import pytest

from repro.hardware import DEFAULT_PARAMS
from repro.hardware.cache import BankedCache, CacheBank, interleave_round_robin


class TestCacheBank:
    def test_cold_miss_then_hit(self):
        c = CacheBank(DEFAULT_PARAMS)
        assert not c.access(0)
        assert c.access(0)
        assert c.access(15)  # same 16-word line
        assert not c.access(16)  # next line

    def test_capacity(self):
        c = CacheBank(DEFAULT_PARAMS)
        assert c.capacity_words == 1024

    def test_lru_eviction_within_set(self):
        c = CacheBank(DEFAULT_PARAMS)
        sets = c.n_sets
        line_words = DEFAULT_PARAMS.cache_line_words
        # 5 lines mapping to set 0; 4 ways -> first one evicted
        addrs = [i * sets * line_words for i in range(5)]
        for a in addrs:
            c.access(a)
        assert not c.access(addrs[0])  # evicted
        assert c.access(addrs[4])  # most recent survives

    def test_lru_touch_refreshes(self):
        c = CacheBank(DEFAULT_PARAMS)
        sets = c.n_sets
        lw = DEFAULT_PARAMS.cache_line_words
        addrs = [i * sets * lw for i in range(4)]
        for a in addrs:
            c.access(a)
        c.access(addrs[0])  # refresh line 0
        c.access(4 * sets * lw)  # evicts line 1, not 0
        assert c.access(addrs[0])
        assert not c.access(addrs[1])

    def test_writeback_counting(self):
        c = CacheBank(DEFAULT_PARAMS)
        sets = c.n_sets
        lw = DEFAULT_PARAMS.cache_line_words
        c.access(0, write=True)
        for i in range(1, 5):
            c.access(i * sets * lw)
        assert c.writebacks == 1

    def test_hit_rate_idle_is_one(self):
        assert CacheBank(DEFAULT_PARAMS).hit_rate == 1.0

    def test_reset_lines_keeps_counters(self):
        c = CacheBank(DEFAULT_PARAMS)
        c.access(0)
        c.reset_lines()
        assert not c.access(0)  # cold again
        assert c.misses == 2

    def test_sequential_stream_miss_rate(self):
        c = CacheBank(DEFAULT_PARAMS)
        n = 512
        for a in range(n):
            c.access(a)
        assert c.misses == n // DEFAULT_PARAMS.cache_line_words


class TestBankedCache:
    def test_aggregate_capacity(self):
        b = BankedCache(8, DEFAULT_PARAMS)
        assert b.capacity_words == 8 * 1024

    def test_run_trace_mask(self):
        b = BankedCache(2, DEFAULT_PARAMS)
        addrs = np.asarray([0, 0, 64, 0], dtype=np.int64)
        writes = np.zeros(4, dtype=bool)
        hits = b.run_trace(addrs, writes)
        assert list(hits) == [False, True, False, True]
        assert b.hits == 2
        assert b.misses == 2

    def test_bigger_group_holds_more(self):
        """A footprint thrashing one bank fits comfortably in eight."""
        foot = 2048  # words
        addrs = np.tile(np.arange(0, foot, 1, dtype=np.int64), 4)
        writes = np.zeros(len(addrs), dtype=bool)
        small = BankedCache(1, DEFAULT_PARAMS)
        big = BankedCache(8, DEFAULT_PARAMS)
        h_small = small.run_trace(addrs, writes).mean()
        h_big = big.run_trace(addrs, writes).mean()
        assert h_big > h_small


class TestInterleave:
    def test_round_robin_order(self):
        src, pos = interleave_round_robin([2, 2])
        assert list(src) == [0, 1, 0, 1]
        assert list(pos) == [0, 0, 1, 1]

    def test_uneven_lengths(self):
        src, pos = interleave_round_robin([3, 1])
        assert len(src) == 4
        # stream 1 exhausts after its first slot
        assert list(src[:2]) == [0, 1]

    def test_empty(self):
        src, pos = interleave_round_robin([])
        assert len(src) == 0

    def test_program_order_preserved_per_stream(self):
        src, pos = interleave_round_robin([5, 3, 4])
        for s in range(3):
            assert list(pos[src == s]) == sorted(pos[src == s])
