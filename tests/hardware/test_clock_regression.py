"""Regressions for the 1 GHz hardcode class (repro-lint R3).

``RunReport.time_s`` and ``ReconfigurationLog.clock_hz`` once assumed the
Table II 1 GHz clock regardless of the configured ``HardwareParams``;
these tests pin the fixed behaviour: every wall-clock conversion tracks
the params that priced the cycles.
"""

from dataclasses import replace

import pytest

from repro.core import CoSparseRuntime, SpMVOperand
from repro.core.reconfig import ReconfigurationLog
from repro.hardware.params import DEFAULT_PARAMS
from repro.hardware.stats import MemCounters, RunReport
from repro.spmv import bfs_semiring
from repro.workloads import random_frontier


class TestRunReportClock:
    def test_time_tracks_report_clock(self):
        rep = RunReport(cycles=4.0e9, counters=MemCounters(), clock_hz=2.0e9)
        assert rep.time_s == pytest.approx(2.0)
        assert rep.seconds(1.0e9) == pytest.approx(4.0)

    def test_default_clock_is_table_ii(self):
        rep = RunReport(cycles=1.0, counters=MemCounters())
        assert rep.clock_hz == DEFAULT_PARAMS.clock_hz
        assert rep.time_s == pytest.approx(1.0 / DEFAULT_PARAMS.clock_hz)


class TestReconfigurationLogClock:
    def test_default_follows_params_table(self):
        assert ReconfigurationLog().clock_hz == DEFAULT_PARAMS.clock_hz


class TestRuntimeClockPlumbs:
    def test_overclocked_params_reach_reports_and_log(self, medium_coo):
        params = replace(DEFAULT_PARAMS, clock_hz=2.0e9)
        rt = CoSparseRuntime(SpMVOperand(medium_coo), "2x8", params=params)
        assert rt.log.clock_hz == 2.0e9
        rt.spmv(random_frontier(medium_coo.n_cols, 0.01, seed=5), bfs_semiring())
        rep = rt.log.records[-1].report
        assert rep.clock_hz == 2.0e9
        assert rep.time_s == pytest.approx(rep.cycles / 2.0e9)

    def test_halving_the_clock_doubles_seconds(self, medium_coo):
        f = random_frontier(medium_coo.n_cols, 0.01, seed=5)
        times = {}
        for hz in (1.0e9, 0.5e9):
            params = replace(DEFAULT_PARAMS, clock_hz=hz)
            rt = CoSparseRuntime(SpMVOperand(medium_coo), "2x8", params=params)
            rt.spmv(f, bfs_semiring())
            times[hz] = rt.log.records[-1].report.time_s
        assert times[0.5e9] == pytest.approx(2.0 * times[1.0e9])
