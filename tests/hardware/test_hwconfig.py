"""The four hardware modes (Fig. 2) and their capacity views."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware import DEFAULT_PARAMS, Geometry, HWMode, MemKind, Sharing, modes_for_algorithm


class TestModeStructure:
    def test_sc_is_all_shared_cache(self):
        assert HWMode.SC.l1_sharing is Sharing.SHARED
        assert HWMode.SC.l1_kind is MemKind.CACHE
        assert HWMode.SC.l2_sharing is Sharing.SHARED

    def test_scs_has_split_l1(self):
        assert HWMode.SCS.l1_kind is MemKind.SPLIT
        assert HWMode.SCS.has_spm

    def test_pc_is_all_private_cache(self):
        assert HWMode.PC.l1_sharing is Sharing.PRIVATE
        assert not HWMode.PC.has_spm

    def test_ps_l1_is_private_spm(self):
        assert HWMode.PS.l1_kind is MemKind.SPM
        assert HWMode.PS.l2_kind is MemKind.CACHE
        assert HWMode.PS.has_spm

    def test_labels(self):
        assert [m.label for m in HWMode] == ["SC", "SCS", "PC", "PS"]


class TestCapacityViews:
    @pytest.fixture
    def geom(self):
        return Geometry(4, 16)

    def test_sc_pools_tile_l1(self, geom):
        assert HWMode.SC.l1_cache_words(geom, DEFAULT_PARAMS) == 16 * 1024

    def test_scs_halves_cache_for_spm(self, geom):
        assert HWMode.SCS.l1_cache_words(geom, DEFAULT_PARAMS) == 8 * 1024
        assert HWMode.SCS.spm_words(geom, DEFAULT_PARAMS) == 8 * 1024

    def test_pc_confines_to_own_bank(self, geom):
        assert HWMode.PC.l1_cache_words(geom, DEFAULT_PARAMS) == 1024
        assert HWMode.PC.spm_words(geom, DEFAULT_PARAMS) == 0

    def test_ps_whole_bank_is_spm(self, geom):
        assert HWMode.PS.l1_cache_words(geom, DEFAULT_PARAMS) == 0
        assert HWMode.PS.spm_words(geom, DEFAULT_PARAMS) == 1024

    def test_shared_l2_pools_system(self, geom):
        assert HWMode.SC.l2_words(geom, DEFAULT_PARAMS) == 4 * 16 * 1024

    def test_private_l2_confined_to_tile(self, geom):
        assert HWMode.PC.l2_words(geom, DEFAULT_PARAMS) == 16 * 1024


class TestAlgorithmPairing:
    def test_ip_gets_shared_modes(self):
        assert modes_for_algorithm("ip") == (HWMode.SC, HWMode.SCS)

    def test_op_gets_private_modes(self):
        assert modes_for_algorithm("op") == (HWMode.PC, HWMode.PS)

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ConfigurationError):
            modes_for_algorithm("gemm")
