"""HBM2 main-memory model tests."""

import pytest

from repro.errors import SimulationError
from repro.hardware import DEFAULT_PARAMS
from repro.hardware.memory import MainMemory


class TestAccounting:
    def test_pools(self):
        m = MainMemory(DEFAULT_PARAMS)
        m.record(320, sequential=True)
        m.record(100, sequential=False)
        assert m.seq_words == 320
        assert m.rand_words == 100
        assert m.total_words == 420

    def test_rejects_negative(self):
        with pytest.raises(SimulationError):
            MainMemory(DEFAULT_PARAMS).record(-1, sequential=True)

    def test_floor_cycles_sequential(self):
        m = MainMemory(DEFAULT_PARAMS)
        m.record(3200, sequential=True)
        assert m.floor_cycles == pytest.approx(100.0)

    def test_random_traffic_costs_more(self):
        seq = MainMemory(DEFAULT_PARAMS)
        seq.record(1000, sequential=True)
        rand = MainMemory(DEFAULT_PARAMS)
        rand.record(1000, sequential=False)
        assert rand.floor_cycles > seq.floor_cycles

    def test_bytes_moved(self):
        m = MainMemory(DEFAULT_PARAMS)
        m.record(10, sequential=True)
        assert m.bytes_moved == 40

    def test_bandwidth_fraction(self):
        m = MainMemory(DEFAULT_PARAMS)
        m.record(320, sequential=True)
        assert m.achieved_bandwidth_fraction(10.0) == pytest.approx(1.0)
        assert m.achieved_bandwidth_fraction(100.0) == pytest.approx(0.1)
        assert m.achieved_bandwidth_fraction(0.0) == 0.0
