"""TransmuterSystem facade tests (configuration + dispatch)."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware import (
    AccessStream,
    DEFAULT_PARAMS,
    Geometry,
    HWMode,
    KernelProfile,
    PEProfile,
    Pattern,
    Region,
    TileProfile,
    TransmuterSystem,
)


def tiny_profile(mode):
    return KernelProfile(
        algorithm="ip" if mode in (HWMode.SC, HWMode.SCS) else "op",
        mode=mode,
        tiles=[
            TileProfile(
                pes=[
                    PEProfile(
                        compute_ops=100.0,
                        streams=[
                            AccessStream(
                                Region.MATRIX, 100, Pattern.SEQUENTIAL, 100
                            )
                        ],
                    )
                ]
            )
        ],
    )


class TestConfiguration:
    def test_accepts_geometry_string(self):
        s = TransmuterSystem("4x8")
        assert s.geometry.tiles == 4

    def test_rejects_bad_fidelity(self):
        with pytest.raises(ConfigurationError):
            TransmuterSystem("2x2", fidelity="exact")

    def test_rejects_non_mode(self):
        s = TransmuterSystem("2x2")
        with pytest.raises(ConfigurationError):
            s.configure("SC")

    def test_first_configure_counts(self):
        s = TransmuterSystem("2x2")
        assert s.configure(HWMode.SC) == DEFAULT_PARAMS.reconfig_cycles
        assert s.reconfigurations == 1

    def test_same_mode_is_free(self):
        s = TransmuterSystem("2x2")
        s.configure(HWMode.SC)
        assert s.configure(HWMode.SC) == 0.0
        assert s.reconfigurations == 1

    def test_switch_costs_at_most_10_cycles(self):
        s = TransmuterSystem("2x2")
        s.configure(HWMode.SC)
        cost = s.configure(HWMode.PC)
        assert 0 < cost <= 10.0


class TestRun:
    def test_run_reconfigures(self):
        s = TransmuterSystem("2x2")
        r = s.run(tiny_profile(HWMode.SC))
        assert r.reconfig_cycles == DEFAULT_PARAMS.reconfig_cycles
        r2 = s.run(tiny_profile(HWMode.SC))
        assert r2.reconfig_cycles == 0.0

    def test_run_attaches_energy(self):
        s = TransmuterSystem("2x2")
        r = s.run(tiny_profile(HWMode.PC))
        assert r.energy_j is not None and r.energy_j > 0

    def test_evaluate_without_switching_leaves_mode(self):
        s = TransmuterSystem("2x2")
        s.configure(HWMode.SC)
        s.evaluate_without_switching(tiny_profile(HWMode.PS))
        assert s.current_mode is HWMode.SC

    def test_auto_fidelity_falls_back_to_analytic(self):
        s = TransmuterSystem("2x2", fidelity="auto")
        r = s.run(tiny_profile(HWMode.SC))
        assert r.fidelity == "analytic"

    def test_report_summary_renders(self):
        s = TransmuterSystem("2x2")
        assert "cycles" in s.run(tiny_profile(HWMode.SC)).summary()
