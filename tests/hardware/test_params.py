"""Table II parameters and derived quantities."""

import pytest

from repro.hardware import DEFAULT_PARAMS, HardwareParams


class TestTable2Values:
    """The constants the paper pins down must stay pinned."""

    def test_clock_is_1ghz(self):
        assert DEFAULT_PARAMS.clock_hz == 1.0e9

    def test_bank_is_4kb(self):
        assert DEFAULT_PARAMS.bank_bytes == 4096

    def test_cache_is_4way_64b_lines(self):
        assert DEFAULT_PARAMS.cache_ways == 4
        assert DEFAULT_PARAMS.cache_line_words * DEFAULT_PARAMS.word_bytes == 64

    def test_eight_mshrs(self):
        assert DEFAULT_PARAMS.mshrs == 8

    def test_hbm_bandwidth_is_128gbps(self):
        # 16 pseudo-channels x 8000 MB/s = 32 words/cycle at 1 GHz
        assert DEFAULT_PARAMS.dram_words_per_cycle == 32.0

    def test_dram_latency_in_80_150ns_band(self):
        assert 80.0 <= DEFAULT_PARAMS.dram_latency <= 150.0

    def test_reconfiguration_within_10_cycles(self):
        # "The runtime hardware reconfiguration overhead is estimated to
        # be <= 10 clock cycles."
        assert DEFAULT_PARAMS.reconfig_cycles <= 10.0


class TestDerived:
    def test_bank_words(self):
        assert DEFAULT_PARAMS.bank_words == 1024

    def test_cache_sets_per_bank(self):
        # 4096 B / (4 ways x 64 B lines) = 16 sets
        assert DEFAULT_PARAMS.cache_sets_per_bank == 16

    def test_cycle_seconds(self):
        assert DEFAULT_PARAMS.cycle_s == pytest.approx(1e-9)

    def test_with_overrides_is_copy(self):
        p = DEFAULT_PARAMS.with_overrides(dram_latency=99.0)
        assert p.dram_latency == 99.0
        assert DEFAULT_PARAMS.dram_latency != 99.0
        assert isinstance(p, HardwareParams)

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_PARAMS.clock_hz = 2e9
