"""RXBar model tests."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.hardware import DEFAULT_PARAMS
from repro.hardware.crossbar import Crossbar
from repro.hardware.latency import shared_conflict_cycles


class TestExpectedConflicts:
    def test_private_is_free(self):
        xb = Crossbar(8, 8, shared=False, params=DEFAULT_PARAMS)
        assert xb.expected_access_extra() == 0.0

    def test_shared_includes_arbitration(self):
        xb = Crossbar(8, 8, shared=True, params=DEFAULT_PARAMS)
        assert xb.expected_access_extra() >= DEFAULT_PARAMS.xbar_arbitration

    def test_more_requesters_more_conflicts(self):
        few = shared_conflict_cycles(4, 8, DEFAULT_PARAMS)
        many = shared_conflict_cycles(32, 8, DEFAULT_PARAMS)
        assert many > few

    def test_more_banks_fewer_conflicts(self):
        narrow = shared_conflict_cycles(16, 4, DEFAULT_PARAMS)
        wide = shared_conflict_cycles(16, 32, DEFAULT_PARAMS)
        assert wide < narrow

    def test_single_requester_no_serialisation(self):
        assert shared_conflict_cycles(1, 8, DEFAULT_PARAMS) == pytest.approx(
            DEFAULT_PARAMS.xbar_arbitration
        )

    def test_rejects_bad_dimensions(self):
        with pytest.raises(SimulationError):
            Crossbar(0, 4, shared=True, params=DEFAULT_PARAMS)


class TestReplay:
    def test_no_conflict_trace(self):
        xb = Crossbar(4, 4, shared=True, params=DEFAULT_PARAMS)
        # each window of 4 hits distinct banks
        banks = np.asarray([0, 1, 2, 3] * 5)
        assert xb.replay_conflicts(banks) == 0.0

    def test_full_conflict_trace(self):
        xb = Crossbar(4, 4, shared=True, params=DEFAULT_PARAMS)
        banks = np.zeros(8, dtype=np.int64)  # all to bank 0
        # two windows of 4, each pays 3 serialisation cycles
        assert xb.replay_conflicts(banks) == 6.0

    def test_private_replay_is_free(self):
        xb = Crossbar(4, 4, shared=False, params=DEFAULT_PARAMS)
        assert xb.replay_conflicts(np.zeros(8, dtype=np.int64)) == 0.0

    def test_record_accumulates(self):
        xb = Crossbar(8, 8, shared=True, params=DEFAULT_PARAMS)
        xb.record(100)
        assert xb.traversals == 100
        assert xb.conflict_cycles == pytest.approx(100 * xb.expected_access_extra())
