"""Energy/power model tests."""

import pytest

from repro.hardware import (
    DEFAULT_PARAMS,
    EnergyModel,
    Geometry,
    MemCounters,
    RunReport,
)


@pytest.fixture
def model():
    return EnergyModel(Geometry(4, 16), DEFAULT_PARAMS)


class TestStatic:
    def test_static_power_positive(self, model):
        assert model.static_power_w > 0

    def test_static_scales_with_size(self):
        small = EnergyModel(Geometry(2, 4), DEFAULT_PARAMS)
        big = EnergyModel(Geometry(8, 16), DEFAULT_PARAMS)
        assert big.static_power_w > 4 * small.static_power_w

    def test_array_power_far_below_cpu(self, model):
        """The premise of the paper's energy claims: the whole array
        draws orders of magnitude less than a 91 W desktop CPU."""
        assert model.static_power_w < 5.0

    def test_area_far_below_xeon(self, model):
        assert model.area_mm2 < 100.0


class TestDynamic:
    def test_breakdown_sums(self, model):
        c = MemCounters(
            pe_ops=1e6,
            spm_accesses=1e5,
            l1_accesses=1e6,
            l2_accesses=1e4,
            dram_words=1e5,
            xbar_hops=1e6,
        )
        b = model.breakdown(c, time_s=1e-3)
        total = (
            b.core_j + b.spm_j + b.l1_j + b.l2_j + b.xbar_j + b.dram_j + b.static_j
        )
        assert b.total_j == pytest.approx(total)

    def test_dram_dominates_per_event(self, model):
        c_dram = MemCounters(dram_words=1000)
        c_l1 = MemCounters(l1_accesses=1000)
        assert model.breakdown(c_dram, 0).total_j > model.breakdown(c_l1, 0).total_j

    def test_spm_cheaper_than_cache(self, model):
        c_spm = MemCounters(spm_accesses=1000)
        c_l1 = MemCounters(l1_accesses=1000)
        assert model.breakdown(c_spm, 0).total_j < model.breakdown(c_l1, 0).total_j

    def test_attach_fills_report(self, model):
        r = RunReport(cycles=1e6, counters=MemCounters(pe_ops=1e6))
        model.attach(r)
        assert r.energy_j is not None
        assert r.energy_j > 0

    def test_average_power_includes_static(self, model):
        r = RunReport(cycles=1e6, counters=MemCounters())
        assert model.average_power_w(r) == pytest.approx(model.static_power_w)

    def test_idle_zero_time(self, model):
        r = RunReport(cycles=0.0, counters=MemCounters())
        assert model.average_power_w(r) == model.static_power_w
