"""Result persistence and drift-diff tests."""

import math

import pytest

from repro.errors import ReproError
from repro.experiments import ExperimentResult
from repro.experiments.store import compare_results, load_result, save_result


def make(speedups):
    r = ExperimentResult("fig4", "demo", ["system", "vector_density", "speedup"])
    for (system, d), s in speedups.items():
        r.add(system=system, vector_density=d, speedup=s)
    return r


class TestRoundTrip:
    def test_json_round_trip(self, tmp_path):
        r = make({("4x8", 0.01): 2.0, ("4x16", 0.01): 1.1})
        r.notes = "hello"
        path = str(tmp_path / "r.json")
        save_result(r, path)
        back = load_result(path)
        assert back.experiment == r.experiment
        assert back.rows == r.rows
        assert back.notes == "hello"

    def test_rejects_unknown_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format_version": 99}')
        with pytest.raises(ReproError):
            load_result(str(path))


class TestCompare:
    def test_no_drift_within_tolerance(self):
        a = make({("4x8", 0.01): 2.00})
        b = make({("4x8", 0.01): 2.04})
        assert compare_results(a, b, ["system", "vector_density"], ["speedup"]) == []

    def test_detects_drift(self):
        a = make({("4x8", 0.01): 2.0})
        b = make({("4x8", 0.01): 3.0})
        drifts = compare_results(a, b, ["system", "vector_density"], ["speedup"])
        assert len(drifts) == 1
        assert drifts[0].rel_change == pytest.approx(0.5)

    def test_missing_row_reported(self):
        a = make({("4x8", 0.01): 2.0, ("4x16", 0.01): 1.5})
        b = make({("4x8", 0.01): 2.0})
        drifts = compare_results(a, b, ["system", "vector_density"], ["speedup"])
        assert len(drifts) == 1
        assert math.isnan(drifts[0].new)

    def test_rejects_different_artifacts(self):
        a = make({("4x8", 0.01): 2.0})
        b = ExperimentResult("fig5", "x", ["system"])
        with pytest.raises(ReproError):
            compare_results(a, b, ["system"], ["speedup"])

    def test_non_numeric_skipped(self):
        a = make({("4x8", 0.01): 2.0})
        a.rows[0]["speedup"] = "n/a"
        b = make({("4x8", 0.01): 2.0})
        drifts = compare_results(a, b, ["system", "vector_density"], ["speedup"])
        # old side non-numeric -> reported as one-sided drift
        assert len(drifts) == 1
        assert math.isnan(drifts[0].old)

    def test_self_comparison_clean_on_real_driver(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "c"))
        from repro.experiments import run_table3

        r = run_table3(scale=512)
        path = str(tmp_path / "t3.json")
        save_result(r, path)
        again = load_result(path)
        assert (
            compare_results(
                r, again, ["graph"], ["gen_V", "gen_E", "gen_density"]
            )
            == []
        )
