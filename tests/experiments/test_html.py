"""HTML report tests."""

import pytest

from repro.errors import ReproError
from repro.experiments import ExperimentResult
from repro.experiments.html import render_report, write_report


def sample():
    r = ExperimentResult(
        "fig4", "Speedup of OP vs IP", ["vector_density", "op_vs_ip_speedup", "system"]
    )
    r.add(vector_density=0.0025, op_vs_ip_speedup=4.0, system="4x8")
    r.add(vector_density=0.04, op_vs_ip_speedup=0.5, system="4x8")
    r.notes = "demo <notes>"
    return r


class TestRender:
    def test_contains_table_and_chart(self):
        doc = render_report([sample()], timestamp="T")
        assert "<table>" in doc
        assert "<svg" in doc  # fig4 has a chart recipe
        assert "0.0025" in doc

    def test_escapes_notes(self):
        doc = render_report([sample()], timestamp="T")
        assert "demo &lt;notes&gt;" in doc

    def test_toc_links_sections(self):
        t2 = ExperimentResult("table2", "Params", ["parameter", "value"])
        t2.add(parameter="clock", value="1 GHz")
        doc = render_report([sample(), t2], timestamp="T")
        assert doc.count('href="#') == 2
        assert 'id="table2"' in doc

    def test_chartless_artifacts_ok(self):
        t2 = ExperimentResult("table2", "Params", ["parameter", "value"])
        t2.add(parameter="clock", value="1 GHz")
        doc = render_report([t2], timestamp="T")
        assert "<svg" not in doc

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            render_report([])

    def test_write_report(self, tmp_path):
        path = tmp_path / "r.html"
        write_report([sample()], str(path), timestamp="T")
        assert path.read_text().startswith("<!DOCTYPE html>")
