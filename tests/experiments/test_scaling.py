"""Geometry-scaling driver tests."""

import pytest

from repro.experiments import run_scaling


@pytest.fixture(scope="module")
def result():
    return run_scaling(
        n=8192,
        nnz=120_000,
        geometries=("2x8", "4x16"),
        densities=(0.002, 0.5),
    )


class TestScalingDriver:
    def test_grid_complete(self, result):
        assert len(result.rows) == 4

    def test_sparse_prefers_op(self, result):
        sparse = [r for r in result.rows if r["vector_density"] == 0.002]
        assert all(r["best_config"].startswith("OP") for r in sparse)

    def test_dense_prefers_ip(self, result):
        dense = [r for r in result.rows if r["vector_density"] == 0.5]
        assert all(r["best_config"].startswith("IP") for r in dense)

    def test_more_pes_faster_dense(self, result):
        by = {(r["system"], r["vector_density"]): r["cycles"] for r in result.rows}
        assert by[("4x16", 0.5)] < by[("2x8", 0.5)]

    def test_power_grows_with_size(self, result):
        by = {r["system"]: r["power_w"] for r in result.rows}
        assert by["4x16"] > by["2x8"]
