"""Co-reconfiguration gains driver tests."""

import pytest

from repro.experiments import run_reconfiguration_gains


@pytest.fixture(scope="module")
def result():
    return run_reconfiguration_gains(
        scale=128,
        workloads={"bfs": ("twitter", "pokec"), "cc": ("twitter",)},
    )


class TestGainsDriver:
    def test_rows_complete(self, result):
        assert len(result.rows) == 3

    def test_results_verified(self, result):
        # the driver raises if the two policies disagree functionally;
        # reaching here means every row passed that check
        assert all(r["net_speedup"] > 0 for r in result.rows)

    def test_reconfiguration_never_hurts_much(self, result):
        assert min(result.column("net_speedup")) > 0.9

    def test_gain_comes_with_switches(self, result):
        best = max(result.rows, key=lambda r: r["net_speedup"])
        if best["net_speedup"] > 1.1:
            assert best["sw_switches"] >= 1
