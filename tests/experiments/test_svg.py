"""SVG chart writer tests."""

import xml.etree.ElementTree as ET

import pytest

from repro.errors import ReproError
from repro.experiments import ExperimentResult
from repro.experiments.svg import bar_chart, figure_svg, line_chart

NS = "{http://www.w3.org/2000/svg}"


def parse(svg):
    return ET.fromstring(svg)


class TestLineChart:
    def rows(self):
        return [
            {"x": 0.001, "y": 5.0, "s": "a"},
            {"x": 0.01, "y": 2.0, "s": "a"},
            {"x": 0.001, "y": 3.0, "s": "b"},
            {"x": 0.01, "y": 1.0, "s": "b"},
        ]

    def test_valid_xml_with_one_polyline_per_series(self):
        root = parse(line_chart(self.rows(), "x", "y", "s", title="t"))
        polylines = root.findall(f".//{NS}polyline")
        assert len(polylines) == 2

    def test_log_axes(self):
        svg = line_chart(self.rows(), "x", "y", "s", log_x=True, log_y=True)
        parse(svg)  # must stay well-formed

    def test_nan_rows_dropped(self):
        rows = self.rows() + [{"x": 0.1, "y": float("nan"), "s": "a"}]
        parse(line_chart(rows, "x", "y", "s"))

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            line_chart([], "x", "y", "s")

    def test_log_scale_rejects_nonpositive(self):
        with pytest.raises(ReproError):
            line_chart([{"x": 0.0, "y": 1.0, "s": "a"}], "x", "y", "s", log_x=True)

    def test_title_escaped(self):
        svg = line_chart(self.rows(), "x", "y", "s", title="a < b & c")
        assert "a &lt; b &amp; c" in svg


class TestBarChart:
    def test_one_bar_per_row(self):
        rows = [{"g": "x", "v": 1.0}, {"g": "y", "v": 2.5}, {"g": "z", "v": 0.5}]
        root = parse(bar_chart(rows, "g", "v"))
        bars = [
            r
            for r in root.findall(f".//{NS}rect")
            if r.get("fill", "").startswith("#") and r.get("fill") != "#ddd"
        ]
        assert len(bars) >= 3

    def test_negative_values_ok(self):
        parse(bar_chart([{"g": "a", "v": -5.0}, {"g": "b", "v": 3.0}], "g", "v"))


class TestFigureRecipes:
    def test_fig4_recipe(self, tmp_path):
        r = ExperimentResult(
            "fig4", "demo", ["vector_density", "op_vs_ip_speedup", "system"]
        )
        for d, s in ((0.0025, 4.0), (0.04, 0.5)):
            r.add(vector_density=d, op_vs_ip_speedup=s, system="4x8")
        path = tmp_path / "fig4.svg"
        svg = figure_svg(r, str(path))
        assert path.exists()
        parse(svg)

    def test_fig10_recipe_drops_geomean(self):
        r = ExperimentResult("fig10", "demo", ["graph", "speedup", "algorithm"])
        r.add(graph="vsp", speedup=2.0, algorithm="PR")
        r.add(graph="", speedup=1.5, algorithm="geomean")
        root = parse(figure_svg(r))
        texts = [t.text for t in root.findall(f".//{NS}text")]
        assert "vsp" in texts

    def test_unknown_experiment_rejected(self):
        r = ExperimentResult("table2", "demo", ["a"])
        with pytest.raises(ReproError):
            figure_svg(r)
