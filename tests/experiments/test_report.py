"""Report/table rendering tests."""

import math

import pytest

from repro.experiments import ExperimentResult, geomean, text_table


class TestGeomean:
    def test_basic(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_ignores_nonpositive(self):
        assert geomean([2.0, 0.0, -1.0, 8.0]) == pytest.approx(4.0)

    def test_empty(self):
        assert geomean([]) == 0.0


class TestTextTable:
    def test_renders_all_rows(self):
        t = text_table(["a", "b"], [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.001}])
        lines = t.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "b" in lines[0]

    def test_missing_cells_blank(self):
        t = text_table(["a", "b"], [{"a": 1}])
        assert t.splitlines()[2].strip().startswith("1")

    def test_large_numbers_get_commas(self):
        t = text_table(["x"], [{"x": 1234567.0}])
        assert "1,234,567" in t


class TestExperimentResult:
    def make(self):
        r = ExperimentResult("figX", "demo", ["k", "v"])
        r.add(k="one", v=1.0)
        r.add(k="two", v=2.0)
        return r

    def test_table_has_header_and_notes(self):
        r = self.make()
        r.notes = "hello"
        text = r.table()
        assert "FIGX" in text
        assert "note: hello" in text

    def test_column_accessor(self):
        assert self.make().column("v") == [1.0, 2.0]

    def test_csv_round_trip(self, tmp_path):
        import csv

        r = self.make()
        path = tmp_path / "r.csv"
        r.to_csv(str(path))
        with open(path) as f:
            rows = list(csv.DictReader(f))
        assert rows[0]["k"] == "one"
        assert float(rows[1]["v"]) == 2.0
