"""Experiment-plumbing tests (cache, run_config, env switches)."""

import os

import pytest

from repro.experiments.common import (
    fig4_matrix,
    fig7_matrix,
    full_runs_enabled,
    run_config,
    table3_graph,
)
from repro.formats import CSCMatrix
from repro.hardware import Geometry, HWMode
from repro.workloads import random_frontier


@pytest.fixture(autouse=True)
def tmp_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))


class TestCaches:
    def test_fig4_matrix_cached(self):
        a = fig4_matrix(0, scale=64)
        b = fig4_matrix(0, scale=64)
        assert a.allclose(b)
        assert a.n_rows == 131_072 // 64

    def test_fig7_matrix_is_skewed(self):
        m = fig7_matrix(0, scale=64)
        deg = m.col_counts()
        assert deg.max() > 4 * max(deg.mean(), 1)

    def test_table3_graph_label(self):
        g = table3_graph("vsp", scale=64)
        assert "vsp" in g.name and "1/64" in g.name

    def test_cache_hits_disk(self, tmp_path):
        fig4_matrix(1, scale=64)
        files = os.listdir(os.environ["REPRO_CACHE_DIR"])
        assert any(f.startswith("fig4_u_") for f in files)


class TestRunConfig:
    def test_prices_both_algorithms(self):
        coo = fig4_matrix(0, scale=64)
        csc = CSCMatrix.from_coo(coo)
        geom = Geometry(2, 4)
        f = random_frontier(coo.n_cols, 0.01, seed=1)
        ip = run_config(coo, csc, f, "ip", HWMode.SC, geom)
        op = run_config(coo, csc, f, "op", HWMode.PC, geom)
        assert ip.cycles > 0 and op.cycles > 0
        assert ip.detail["algorithm"] == "ip"
        assert op.detail["algorithm"] == "op"


class TestEnvSwitches:
    def test_full_runs_flag(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "0")
        assert not full_runs_enabled()
        monkeypatch.setenv("REPRO_FULL", "1")
        assert full_runs_enabled()
        monkeypatch.setenv("REPRO_FULL", "false")
        assert not full_runs_enabled()
