"""Small-scale smoke + shape tests of the figure drivers.

The benchmark harness runs the real (paper-scale) grids; here each driver
runs on a shrunken grid and the *qualitative* paper claims are asserted.
"""

import numpy as np
import pytest

pytestmark = pytest.mark.slow  # full driver sweeps: excluded from `make test`

from repro.experiments import (
    crossover_table,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
    run_fig8,
    run_fig9,
    run_fig10,
    run_table1,
    run_table2,
    run_table3,
)


@pytest.fixture(autouse=True)
def tmp_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self, tmp_path_factory):
        import os

        os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("c4"))
        return run_fig4(scale=16, geometries=("4x8", "4x16"), matrices=(0,))

    def test_rows_complete(self, result):
        assert len(result.rows) == 2 * 5

    def test_op_wins_sparse_end(self, result):
        sparse = [r for r in result.rows if r["vector_density"] == 0.0025]
        assert all(r["op_vs_ip_speedup"] > 1.0 for r in sparse)

    def test_speedup_decreases_with_density(self, result):
        for system in ("4x8", "4x16"):
            ss = [
                r["op_vs_ip_speedup"]
                for r in result.rows
                if r["system"] == system
            ]
            assert ss[0] > ss[-1]

    def test_crossover_shrinks_with_more_pes(self, result):
        cvd = {r["system"]: r["cvd"] for r in crossover_table(result).rows}
        assert cvd["4x16"] < cvd["4x8"]


class TestFig5:
    def test_gain_grows_with_density(self):
        # matrix 3 (the largest) keeps a vblock-sized vector footprint
        # even at 1/16 scale, so the output-pressure mechanism shows
        r = run_fig5(
            scale=16,
            geometries=("4x8",),
            matrices=(3,),
            densities=(0.01, 0.5, 1.0),
        )
        gains = [row["scs_gain_pct"] for row in r.rows]
        assert gains[-1] > gains[0]


class TestFig6:
    def test_ps_wins_only_when_heap_spills(self):
        r = run_fig6(
            scale=4,
            geometries=("4x8",),
            matrices=(3,),
            densities=(0.0025, 0.04),
        )
        lo, hi = r.rows[0], r.rows[-1]
        assert lo["ps_gain_pct"] < hi["ps_gain_pct"]
        assert lo["ps_gain_pct"] < 5.0  # PC fine at small heaps


class TestFig7:
    @pytest.fixture(scope="class")
    def result(self, tmp_path_factory):
        import os

        os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("c7"))
        return run_fig7(scale=16, matrices=(0,), geometry_name="8x16")

    def test_all_configs_present(self, result):
        configs = {r["config"] for r in result.rows}
        assert configs == {"SC", "SCS", "PC", "PS"}

    def test_partitioning_helps_ip(self, result):
        for cfg in ("SC", "SCS"):
            rows = {r["partitioned"]: r for r in result.rows if r["config"] == cfg}
            assert (
                rows[True]["powerlaw_cycles"] <= rows[False]["powerlaw_cycles"]
            )


class TestFig8:
    @pytest.fixture(scope="class")
    def result(self, tmp_path_factory):
        import os

        os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("c8"))
        return run_fig8(scale=256, graphs=("twitter", "vsp"), densities=(0.001, 1.0))

    def test_beats_cpu_and_gpu_on_average(self, result):
        avg = result.rows[-1]
        assert avg["graph"] == "average"
        assert avg["speedup_vs_cpu"] > 1.0
        assert avg["speedup_vs_gpu"] > 1.0

    def test_energy_gains_large(self, result):
        avg = result.rows[-1]
        assert avg["effgain_vs_cpu"] > 20
        assert avg["effgain_vs_gpu"] > 20

    def test_sparse_vectors_use_op(self, result):
        sparse = [r for r in result.rows[:-1] if r["vector_density"] == 0.001]
        assert all(r["config"].startswith("OP") for r in sparse)

    def test_dense_vectors_use_ip(self, result):
        dense = [r for r in result.rows[:-1] if r["vector_density"] == 1.0]
        assert all(r["config"].startswith("IP") for r in dense)


class TestFig9:
    @pytest.fixture(scope="class")
    def result(self, tmp_path_factory):
        import os

        os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("c9"))
        return run_fig9(scale=128, geometry_name="16x16")

    def test_all_five_configs_priced(self, result):
        for col in ("IP/SC", "IP/SCS", "OP/SC", "OP/PC", "OP/PS"):
            assert col in result.columns
            assert all(np.isfinite(r[col]) for r in result.rows)

    def test_op_chosen_at_sparse_ends(self, result):
        assert result.rows[0]["best_sw"] == "OP"
        assert result.rows[-1]["best_sw"] == "OP"

    def test_ip_chosen_at_peak(self, result):
        peak = max(result.rows, key=lambda r: r["vector_density"])
        assert peak["best_sw"] == "IP"

    def test_net_speedup_reported(self, result):
        assert "net speedup" in result.notes

    def test_baseline_normalisation(self, result):
        assert all(r["IP/SC"] == 1.0 for r in result.rows)


class TestFig10:
    def test_small_run_wins_somewhere(self, tmp_path_factory):
        import os

        os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("c10"))
        r = run_fig10(
            scale=256,
            workloads={"bfs": ("twitter",), "pr": ("twitter",)},
        )
        assert r.rows[-1]["algorithm"] == "geomean"
        speedups = [row["speedup"] for row in r.rows[:-1]]
        assert all(s > 0 for s in speedups)
        effs = [row["effgain"] for row in r.rows[:-1]]
        assert all(e > 10 for e in effs)


class TestTables:
    def test_table1_verified(self):
        r = run_table1(n=150)
        assert all(row["verified"] for row in r.rows)
        assert [row["algorithm"] for row in r.rows] == [
            "SpMV",
            "BFS",
            "SSSP",
            "PR",
            "CF",
        ]

    def test_table2_lists_parameters(self):
        r = run_table2()
        assert any("1.0 GHz" in str(row["value"]) for row in r.rows)

    def test_table3_specs_vs_generated(self):
        r = run_table3(scale=512)
        assert len(r.rows) == 5
        for row in r.rows:
            assert row["gen_V"] <= row["spec_V"]
            assert row["gen_E"] > 0
