"""Interconnect model tests: exchange pricing and link accounting."""

import numpy as np
import pytest

from repro.cluster import (
    ENTRY_BYTES,
    FullMesh,
    LinkParams,
    SwitchedStar,
    topology_for,
)
from repro.errors import ConfigurationError

LINK = LinkParams(bandwidth_bytes_per_cycle=10.0, latency_cycles=100.0)


def traffic(entries):
    """Entry-count matrix -> byte matrix."""
    return np.asarray(entries, dtype=np.int64) * ENTRY_BYTES


class TestFullMesh:
    def test_cost_is_slowest_single_message(self):
        mesh = FullMesh(3, LINK)
        rep = mesh.exchange(traffic([[0, 10, 5], [2, 0, 0], [0, 1, 0]]))
        # worst message is 10 entries = 160 bytes on a dedicated link
        assert rep.cycles == pytest.approx(100.0 + 160 / 10.0)
        assert rep.total_bytes == 18 * ENTRY_BYTES
        assert rep.max_link_bytes == 10 * ENTRY_BYTES
        assert rep.messages == 4

    def test_diagonal_is_free(self):
        mesh = FullMesh(2, LINK)
        rep = mesh.exchange(traffic([[100, 0], [0, 100]]))
        assert rep.cycles == 0.0
        assert rep.total_bytes == 0
        assert mesh.link_bytes == {}

    def test_link_bytes_accumulate(self):
        mesh = FullMesh(2, LINK)
        mesh.exchange(traffic([[0, 3], [1, 0]]))
        mesh.exchange(traffic([[0, 2], [0, 0]]))
        assert mesh.link_bytes[(0, 1)] == 5 * ENTRY_BYTES
        assert mesh.link_bytes[(1, 0)] == 1 * ENTRY_BYTES


class TestSwitchedStar:
    def test_cost_is_busiest_port_plus_two_hops(self):
        star = SwitchedStar(3, LINK)
        # node 0 sends 10 to node 1 and 5 to node 2: its uplink carries
        # 15 entries, the busiest port.
        rep = star.exchange(traffic([[0, 10, 5], [0, 0, 0], [0, 0, 0]]))
        busiest = 15 * ENTRY_BYTES
        assert rep.cycles == pytest.approx(2 * 100.0 + busiest / 10.0)
        assert rep.max_link_bytes == busiest
        assert star.link_bytes[("up", 0)] == busiest
        assert star.link_bytes[("down", 1)] == 10 * ENTRY_BYTES
        assert star.link_bytes[("down", 2)] == 5 * ENTRY_BYTES

    def test_star_serializes_where_mesh_overlaps(self):
        t = traffic([[0, 8, 8], [0, 0, 0], [0, 0, 0]])
        mesh_cycles = FullMesh(3, LINK).exchange(t).cycles
        star_cycles = SwitchedStar(3, LINK).exchange(t.copy()).cycles
        # the mesh sends both messages concurrently; the star's shared
        # uplink serializes them (plus the extra hop)
        assert star_cycles > mesh_cycles

    def test_zero_traffic_short_circuits(self):
        star = SwitchedStar(2, LINK)
        rep = star.exchange(np.zeros((2, 2), dtype=np.int64))
        assert rep.cycles == 0.0
        assert star.link_bytes == {}


class TestFactory:
    def test_names(self):
        assert topology_for("mesh", 2).name == "mesh"
        assert topology_for("star", 2).name == "star"

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            topology_for("torus", 4)

    def test_needs_a_node(self):
        with pytest.raises(ConfigurationError):
            FullMesh(0)
