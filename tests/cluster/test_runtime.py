"""ShardedRuntime tests: the bit-identity contract, exchange accounting,
state discipline, and observability integration."""

import numpy as np
import pytest

from repro.cluster import LinkParams, ShardedRuntime
from repro.core.runtime import CoSparseRuntime
from repro.errors import ConfigurationError
from repro.experiments.common import table3_graph
from repro.graphs import bfs, pagerank, sssp
from repro.graphs.pagerank import pagerank_semiring_for
from repro.obs import Tracer, override
from repro.perf import counters

NODE_COUNTS = (1, 2, 4, 8)


@pytest.fixture(scope="module")
def twitter():
    return table3_graph("twitter", scale=64)


@pytest.fixture(scope="module")
def vsp():
    return table3_graph("vsp", scale=64)


def _run(algo, graph, runtime=None):
    if algo is pagerank:
        return pagerank(graph, runtime=runtime, max_iters=12)
    return algo(graph, 0, runtime=runtime)


class TestBitIdentity:
    @pytest.mark.parametrize("algo", [bfs, sssp, pagerank])
    @pytest.mark.parametrize("nodes", NODE_COUNTS)
    def test_serial_matches_single_node(self, twitter, algo, nodes):
        base = _run(algo, twitter)
        rt = ShardedRuntime(twitter.operand, nodes, jobs=1)
        run = _run(algo, twitter, runtime=rt)
        assert np.array_equal(base.values, run.values)
        assert run.converged == base.converged
        assert len(rt.log) == len(base.log)

    @pytest.mark.parametrize("algo", [bfs, pagerank])
    def test_second_graph(self, vsp, algo):
        base = _run(algo, vsp)
        run = _run(algo, vsp, runtime=ShardedRuntime(vsp.operand, 4, jobs=1))
        assert np.array_equal(base.values, run.values)

    def test_commvol_and_star_stay_identical(self, twitter):
        """Partition strategy and fabric change cycles, never results."""
        base = _run(sssp, twitter)
        rt = ShardedRuntime(
            twitter.operand, 4, topology="star", partition="commvol", jobs=1
        )
        run = _run(sssp, twitter, runtime=rt)
        assert np.array_equal(base.values, run.values)
        assert rt.log.total_network_cycles > 0

    def test_pool_matches_serial_run_for_run(self, twitter):
        """The pooled path must reproduce serial cycles exactly, across
        repeated runs on the same runtime (persistent hw mode)."""
        serial = ShardedRuntime(twitter.operand, 4, jobs=1)
        s1 = _run(sssp, twitter, runtime=serial)
        s2 = _run(sssp, twitter, runtime=serial)
        with ShardedRuntime(twitter.operand, 4, jobs=2) as pooled:
            p1 = _run(sssp, twitter, runtime=pooled)
            p2 = _run(sssp, twitter, runtime=pooled)
        assert np.array_equal(s1.values, p1.values)
        assert np.array_equal(s2.values, p2.values)
        assert p1.log.total_cycles == s1.log.total_cycles
        assert p2.log.total_cycles == s2.log.total_cycles
        assert p1.log.config_sequence() == s1.log.config_sequence()


class TestExchange:
    def test_seed_iteration_is_free(self, twitter):
        rt = ShardedRuntime(twitter.operand, 4, jobs=1)
        _run(bfs, twitter, runtime=rt)
        records = list(rt.log)
        assert records[0].network_cycles == 0.0
        assert records[0].exchange is None
        assert any(r.network_cycles > 0 for r in records[1:])

    def test_single_node_never_pays_network(self, twitter):
        rt = ShardedRuntime(twitter.operand, 1, jobs=1)
        _run(pagerank, twitter, runtime=rt)
        assert rt.log.total_network_cycles == 0.0
        assert rt.log.total_bytes == 0

    def test_perf_counters(self, twitter):
        counters.reset()
        rt = ShardedRuntime(twitter.operand, 4, jobs=1)
        _run(pagerank, twitter, runtime=rt)
        assert counters.cluster_spmv_calls == len(rt.log)
        assert counters.cluster_shard_tasks == 4 * len(rt.log)
        assert counters.cluster_exchange_bytes == rt.log.total_bytes
        assert rt.log.total_bytes > 0

    def test_custom_link_scales_cost(self, twitter):
        slow = ShardedRuntime(
            twitter.operand, 4, jobs=1,
            link=LinkParams(bandwidth_bytes_per_cycle=1.0,
                            latency_cycles=5000.0),
        )
        fast = ShardedRuntime(twitter.operand, 4, jobs=1)
        _run(bfs, twitter, runtime=slow)
        _run(bfs, twitter, runtime=fast)
        assert (
            slow.log.total_network_cycles > fast.log.total_network_cycles
        )


class TestStateDiscipline:
    def test_reset_log_keeps_hardware_mode(self, twitter):
        """Re-running on the same sharded runtime mirrors single-node:
        the log resets but the resident hw mode persists, so run2's
        cycles may legitimately differ from run1's."""
        single = CoSparseRuntime(twitter.operand, "8x16")
        b1 = _run(sssp, twitter, runtime=single)
        b2 = _run(sssp, twitter, runtime=single)
        rt = ShardedRuntime(twitter.operand, 2, jobs=1)
        r1 = _run(sssp, twitter, runtime=rt)
        r2 = _run(sssp, twitter, runtime=rt)
        assert np.array_equal(r1.values, b1.values)
        assert np.array_equal(r2.values, b2.values)
        # the single-node run1->run2 cycle delta comes from the persistent
        # mode; the sharded runtime must show the same qualitative effect
        assert (b1.log.total_cycles == b2.log.total_cycles) == (
            r1.log.total_cycles == r2.log.total_cycles
        )

    def test_log_properties(self, twitter):
        rt = ShardedRuntime(twitter.operand, 2, jobs=1)
        _run(bfs, twitter, runtime=rt)
        log = rt.log
        assert log.total_cycles == pytest.approx(
            log.total_compute_cycles + log.total_network_cycles
        )
        assert len(log.config_sequence()) == len(log)
        assert len(log.density_sequence()) == len(log)
        assert "iterations" in log.summary() or "iter" in log.summary()
        record = log.records[1]
        assert record.total_cycles == pytest.approx(
            record.compute_cycles + record.network_cycles
        )
        assert record.config_label


class TestValidation:
    def test_rejects_adaptive_policy(self, twitter):
        with pytest.raises(ConfigurationError):
            ShardedRuntime(twitter.operand, 2, policy="adaptive")

    def test_rejects_nonsquare(self):
        from repro.formats import COOMatrix

        rect = COOMatrix(4, 6, [0, 1], [2, 5], [1.0, 1.0])
        with pytest.raises(ConfigurationError):
            ShardedRuntime(rect, 2)

    def test_rejects_bad_node_count(self, twitter):
        with pytest.raises(ConfigurationError):
            ShardedRuntime(twitter.operand, 0)

    def test_rejects_batching(self, twitter):
        rt = ShardedRuntime(twitter.operand, 2, jobs=1)
        with pytest.raises(ConfigurationError):
            rt.spmv_batch()

    def test_describe(self, twitter):
        import json

        rt = ShardedRuntime(
            twitter.operand, 2, topology="star", partition="commvol", jobs=1
        )
        desc = rt.describe()
        assert desc["nodes"] == 2
        assert desc["topology"] == "star"
        assert desc["partition"] == "commvol"
        assert desc["pooled"] is False
        json.dumps(desc)  # stable and JSON-able


class TestObservability:
    def test_spans_and_events(self, twitter):
        with override(Tracer(label="cluster-test")) as tracer:
            rt = ShardedRuntime(twitter.operand, 2, jobs=1)
            _run(bfs, twitter, runtime=rt)
        span_names = {r["name"] for r in tracer.span_records()}
        assert "cluster.spmv" in span_names
        assert "cluster.exchange" in span_names
        exchanges = tracer.event_records("cluster_exchange")
        decisions = tracer.event_records("shard_decision")
        # one exchange event per post-seed iteration, K decisions per
        # iteration
        assert len(exchanges) == len(rt.log) - 1
        assert len(decisions) == 2 * len(rt.log)
        assert exchanges[0]["topology"] == "mesh"
        assert decisions[0]["shard"] == 0
        assert decisions[0]["algorithm"] in ("ip", "op")
