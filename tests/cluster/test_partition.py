"""Shard construction tests: coverage, ordering, and the commvol split."""

import numpy as np
import pytest

from repro.cluster import Shard, build_shards, shard_bounds
from repro.errors import ConfigurationError
from repro.spmv import (
    commvol_row_bounds,
    cut_columns,
    equal_nnz_row_bounds,
)


class TestBuildShards:
    def test_shards_tile_the_matrix(self, powerlaw_coo):
        bounds = shard_bounds(powerlaw_coo, 4)
        shards = build_shards(powerlaw_coo, bounds)
        assert len(shards) == 4
        assert shards[0].lo == 0
        assert shards[-1].hi == powerlaw_coo.n_rows
        for a, b in zip(shards, shards[1:]):
            assert a.hi == b.lo
        assert sum(s.coo.nnz for s in shards) == powerlaw_coo.nnz

    def test_local_rows_and_global_cols(self, powerlaw_coo):
        shards = build_shards(powerlaw_coo, shard_bounds(powerlaw_coo, 3))
        for s in shards:
            assert s.coo.n_rows == s.hi - s.lo
            assert s.coo.n_cols == powerlaw_coo.n_cols
            if s.coo.nnz:
                assert s.coo.rows.min() >= 0
                assert s.coo.rows.max() < s.n_rows

    def test_entry_order_is_preserved(self, powerlaw_coo):
        """Slicing the row-sorted entry stream must not reorder entries —
        the accumulation-order half of the bit-identity contract."""
        shards = build_shards(powerlaw_coo, shard_bounds(powerlaw_coo, 4))
        rebuilt_rows = np.concatenate([s.coo.rows + s.lo for s in shards])
        rebuilt_cols = np.concatenate([s.coo.cols for s in shards])
        assert np.array_equal(rebuilt_rows, powerlaw_coo.rows)
        assert np.array_equal(rebuilt_cols, powerlaw_coo.cols)

    def test_col_mask_matches_entries(self, powerlaw_coo):
        shards = build_shards(powerlaw_coo, shard_bounds(powerlaw_coo, 4))
        for s in shards:
            expected = np.zeros(powerlaw_coo.n_cols, dtype=bool)
            expected[s.coo.cols] = True
            assert np.array_equal(s.col_mask, expected)

    def test_unknown_strategy_rejected(self, powerlaw_coo):
        with pytest.raises(ConfigurationError):
            shard_bounds(powerlaw_coo, 2, strategy="metis")


class TestCommvol:
    def test_window_zero_is_equal_nnz(self, powerlaw_coo):
        ptr = powerlaw_coo.row_extents()
        frozen = commvol_row_bounds(ptr, powerlaw_coo.cols, 4, window=0)
        assert np.array_equal(frozen, equal_nnz_row_bounds(ptr, 4))

    def test_never_cuts_more_than_equal_nnz(self, powerlaw_coo):
        ptr = powerlaw_coo.row_extents()
        cols = powerlaw_coo.cols
        for parts in (2, 4, 8):
            nnz_cut = cut_columns(ptr, cols, equal_nnz_row_bounds(ptr, parts))
            cv_cut = cut_columns(
                ptr, cols, commvol_row_bounds(ptr, cols, parts)
            )
            assert cv_cut <= nnz_cut

    def test_bounds_stay_monotone_and_cover(self, powerlaw_coo):
        ptr = powerlaw_coo.row_extents()
        bounds = commvol_row_bounds(ptr, powerlaw_coo.cols, 6)
        assert bounds[0] == 0
        assert bounds[-1] == powerlaw_coo.n_rows
        assert np.all(np.diff(bounds) >= 0)

    def test_strategy_dispatch(self, powerlaw_coo):
        cv = shard_bounds(powerlaw_coo, 4, strategy="commvol")
        ptr = powerlaw_coo.row_extents()
        assert np.array_equal(
            cv, commvol_row_bounds(ptr, powerlaw_coo.cols, 4)
        )
        shards = build_shards(powerlaw_coo, cv)
        assert isinstance(shards[0], Shard)
        assert sum(s.coo.nnz for s in shards) == powerlaw_coo.nnz
