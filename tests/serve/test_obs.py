"""Serving observability: per-query spans, events, metrics."""

import asyncio

from repro.graphs import Graph
from repro.obs import Tracer, override
from repro.obs.events import validate_record
from repro.serve import ServeConfig
from repro.serve.server import QueryService
from repro.workloads import chung_lu


def serve_one_query_traced():
    service = QueryService(ServeConfig(port=0))
    service.registry.register(
        "g", Graph(chung_lu(400, 2500, seed=3), name="g")
    )
    tracer = Tracer(label="serve-test")
    with override(tracer):
        try:
            response = asyncio.run(
                service.handle(
                    {"id": 1, "op": "query", "graph": "g",
                     "algorithm": "bfs", "source": 2}
                )
            )
        finally:
            service.close()
    assert response["ok"]
    return tracer, response


class TestServeTracing:
    def test_query_emits_span_event_and_metrics(self):
        tracer, response = serve_one_query_traced()
        spans = [
            r for r in tracer.records
            if r.get("type") == "span" and r.get("name") == "serve.query"
        ]
        assert len(spans) == 1
        assert spans[0]["attrs"]["graph"] == "g"
        assert spans[0]["attrs"]["cache_hit"] is False
        events = [
            r for r in tracer.records
            if r.get("type") == "event" and r.get("event") == "serve_query"
        ]
        assert len(events) == 1
        event = events[0]
        assert event["algorithm"] == "bfs"
        assert event["coalesced_width"] == 1
        assert event["latency_s"] > 0
        # The serve_query record satisfies the schema validator.
        assert validate_record(event) == []
        assert "serve.latency_s" in tracer.metrics.observations
        assert "serve.queue_depth" in tracer.metrics.observations
        assert "serve.coalesce_width" in tracer.metrics.observations

    def test_latency_never_reaches_cycle_records(self):
        """Serving wall-clock stays in obs; modelled cycles in the
        response equal the tracer-free direct run's cycles."""
        from repro.graphs import bfs

        tracer, response = serve_one_query_traced()
        graph = Graph(chung_lu(400, 2500, seed=3), name="g")
        direct = bfs(graph, 2)
        assert response["result"]["cycles"] == direct.log.total_cycles
