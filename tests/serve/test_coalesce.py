"""Coalescer mechanics: grouping, dedup fan-out, sealing, failures."""

import asyncio

import pytest

from repro.serve.coalesce import Coalescer


def run(coro):
    return asyncio.run(coro)


def make_runner(calls):
    async def run_batch(sources):
        calls.append(list(sources))
        return [{"source": s, "tag": len(calls)} for s in sources]

    return run_batch


class TestGrouping:
    def test_single_query_runs_alone(self):
        calls = []

        async def scenario():
            c = Coalescer(window_s=0.0)
            return await c.submit(("g", "bfs"), 3, make_runner(calls))

        result = run(scenario())
        assert result.width == 1
        assert result.response["source"] == 3
        assert calls == [[3]]

    def test_concurrent_same_key_coalesce(self):
        calls = []

        async def scenario():
            c = Coalescer(window_s=0.01)
            results = await asyncio.gather(
                *(c.submit(("g", "bfs"), s, make_runner(calls))
                  for s in [5, 6, 7])
            )
            return c, results

        c, results = run(scenario())
        assert calls == [[5, 6, 7]]
        assert [r.width for r in results] == [3, 3, 3]
        assert [r.response["source"] for r in results] == [5, 6, 7]
        assert c.stats()["batches"] == 1
        assert c.stats()["coalesced_queries"] == 3

    def test_different_keys_do_not_mix(self):
        calls = []

        async def scenario():
            c = Coalescer(window_s=0.01)
            return await asyncio.gather(
                c.submit(("g", "bfs"), 1, make_runner(calls)),
                c.submit(("g", "sssp"), 1, make_runner(calls)),
            )

        run(scenario())
        assert sorted(calls) == [[1], [1]]

    def test_duplicate_sources_fan_out(self):
        calls = []

        async def scenario():
            c = Coalescer(window_s=0.01)
            return await asyncio.gather(
                *(c.submit(("g", "bfs"), s, make_runner(calls))
                  for s in [9, 9, 9, 4])
            )

        results = run(scenario())
        # One executed batch with two distinct sources...
        assert calls == [[9, 4]]
        # ...but every duplicate waiter got its answer.
        assert [r.response["source"] for r in results] == [9, 9, 9, 4]
        assert all(r.width == 2 for r in results)

    def test_max_width_seals_batch(self):
        calls = []

        async def scenario():
            c = Coalescer(window_s=0.01, max_width=2)
            return await asyncio.gather(
                *(c.submit(("g", "bfs"), s, make_runner(calls))
                  for s in [1, 2, 3])
            )

        results = run(scenario())
        assert sorted(len(batch) for batch in calls) == [1, 2]
        assert sorted(r.response["source"] for r in results) == [1, 2, 3]


class TestFailures:
    def test_batch_failure_reaches_every_waiter(self):
        async def run_batch(sources):
            raise RuntimeError("kernel exploded")

        async def scenario():
            c = Coalescer(window_s=0.01)
            return await asyncio.gather(
                c.submit(("g", "bfs"), 1, run_batch),
                c.submit(("g", "bfs"), 2, run_batch),
                return_exceptions=True,
            )

        results = run(scenario())
        assert all(isinstance(r, RuntimeError) for r in results)

    def test_wrong_response_count_raises(self):
        async def run_batch(sources):
            return [{"source": sources[0]}] * (len(sources) + 1)

        async def scenario():
            c = Coalescer(window_s=0.0)
            return await c.submit(("g", "bfs"), 1, run_batch)

        with pytest.raises(RuntimeError, match="responses"):
            run(scenario())

    def test_failed_batch_not_counted_in_stats(self):
        async def run_batch(sources):
            raise ValueError("nope")

        async def scenario():
            c = Coalescer(window_s=0.0)
            try:
                await c.submit(("g", "bfs"), 1, run_batch)
            except ValueError:
                pass
            return c.stats()

        stats = run(scenario())
        assert stats["batches"] == 0
