"""Wire-protocol framing: round trips, bad frames, envelopes."""

import socket
import struct
import threading

import pytest

from repro.errors import ServeError
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    decode_payload,
    encode_frame,
    error_response,
    ok_response,
    read_frame_sync,
    write_frame_sync,
)


def _roundtrip(message):
    frame = encode_frame(message)
    (length,) = struct.unpack(">I", frame[:4])
    assert length == len(frame) - 4
    return decode_payload(frame[4:])


class TestFraming:
    def test_roundtrip_basic(self):
        message = {"id": 1, "op": "query", "graph": "g", "source": 3}
        assert _roundtrip(message) == message

    def test_roundtrip_floats_bit_exact(self):
        # json uses repr (shortest round-trip) for floats: the decoded
        # values must be the same doubles, including awkward ones.
        values = [0.1, 1 / 3, 1e-300, 2**53 + 1.0, 6.02e23]
        assert _roundtrip({"values": values})["values"] == values

    def test_roundtrip_infinity(self):
        # BFS/SSSP mark unreachable vertices with inf; the json module's
        # Infinity literal must survive the trip.
        out = _roundtrip({"values": [0.0, float("inf"), 2.0]})
        assert out["values"][1] == float("inf")

    def test_oversized_payload_rejected(self, monkeypatch):
        monkeypatch.setattr(
            "repro.serve.protocol.MAX_FRAME_BYTES", 64
        )
        with pytest.raises(ServeError, match="exceeds"):
            encode_frame({"blob": "x" * 128})

    def test_unparseable_payload_rejected(self):
        with pytest.raises(ServeError, match="unparseable"):
            decode_payload(b"{nope")

    def test_non_object_payload_rejected(self):
        with pytest.raises(ServeError, match="JSON object"):
            decode_payload(b"[1,2,3]")

    def test_frame_limit_is_sane(self):
        assert MAX_FRAME_BYTES >= 2**20


class TestSyncSocket:
    def test_socket_roundtrip(self):
        server, client = socket.socketpair()
        try:
            message = {"id": 7, "op": "ping"}

            def echo():
                write_frame_sync(server, read_frame_sync(server))

            thread = threading.Thread(target=echo)
            thread.start()
            write_frame_sync(client, message)
            assert read_frame_sync(client) == message
            thread.join()
        finally:
            server.close()
            client.close()

    def test_truncated_frame_raises(self):
        server, client = socket.socketpair()
        try:
            client.sendall(struct.pack(">I", 100) + b"short")
            client.close()
            with pytest.raises(ServeError, match="mid-frame"):
                read_frame_sync(server)
        finally:
            server.close()

    def test_closed_before_frame_raises(self):
        server, client = socket.socketpair()
        try:
            client.close()
            with pytest.raises(ServeError, match="closed"):
                read_frame_sync(server)
        finally:
            server.close()


class TestEnvelopes:
    def test_ok_envelope(self):
        response = ok_response(5, {"pong": True})
        assert response == {"id": 5, "ok": True, "result": {"pong": True}}

    def test_error_envelope(self):
        response = error_response(None, "boom")
        assert response["ok"] is False
        assert response["error"] == "boom"
