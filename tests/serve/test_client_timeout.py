"""ServeClient failure paths: a down or stalled server must raise a
clear :class:`ServeError` instead of hanging or leaking ``OSError``."""

import socket

import pytest

from repro.errors import ServeError
from repro.serve.client import ServeClient


def _free_port():
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


class TestConnect:
    def test_refused_connection_raises_serve_error(self):
        with pytest.raises(ServeError, match="could not connect"):
            ServeClient(port=_free_port(), timeout_s=1.0)

    def test_error_names_the_endpoint(self):
        port = _free_port()
        with pytest.raises(ServeError, match=f"127.0.0.1:{port}"):
            ServeClient(port=port, timeout_s=1.0)


class TestStalledServer:
    def test_never_accepting_socket_trips_read_timeout(self):
        """A listener whose backlog completes the TCP handshake but
        that never accepts (the server process is wedged) must surface
        as a timeout ServeError, not block the caller forever."""
        listener = socket.socket()
        try:
            listener.bind(("127.0.0.1", 0))
            listener.listen(1)
            port = listener.getsockname()[1]
            client = ServeClient(port=port, timeout_s=0.3)
            try:
                with pytest.raises(ServeError, match="within 0.3s"):
                    client.ping()
            finally:
                client.close()
        finally:
            listener.close()

    def test_timeout_is_stored(self):
        listener = socket.socket()
        try:
            listener.bind(("127.0.0.1", 0))
            listener.listen(1)
            client = ServeClient(
                port=listener.getsockname()[1], timeout_s=0.25
            )
            assert client.timeout_s == 0.25
            client.close()
        finally:
            listener.close()
