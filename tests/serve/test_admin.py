"""The serve admin surface: STATS/HEALTH payloads, their validation,
the histogram-vs-exact latency agreement, error accounting and the
flight-dump admin op."""

import asyncio

import pytest

from repro.graphs import Graph
from repro.obs import flight
from repro.obs.flight import FlightRecorder
from repro.obs.metrics import HIST_GROWTH
from repro.obs.quantiles import exact_percentile
from repro.serve import ServeConfig, validate_payload
from repro.serve.server import QueryService
from repro.workloads import chung_lu


@pytest.fixture(scope="module")
def admin_graph():
    return Graph(chung_lu(600, 4500, seed=5), name="admin")


def make_service(graph=None, **overrides):
    config = ServeConfig(port=0, **overrides)
    service = QueryService(config)
    if graph is not None:
        service.registry.register("g", graph)
    return service


def run_ops(service, *requests):
    async def scenario():
        return [await service.handle(r) for r in requests]

    try:
        return asyncio.run(scenario())
    finally:
        service.close()


def _query(i, source):
    return {
        "id": i,
        "op": "query",
        "graph": "g",
        "algorithm": "bfs",
        "source": source,
    }


class TestHealth:
    def test_empty_service_is_not_ready(self):
        (response,) = run_ops(make_service(), {"id": 1, "op": "health"})
        health = response["result"]
        assert validate_payload("serve_health", health) == []
        assert health["ok"] is False
        assert health["status"] == "empty"
        assert health["graphs_loaded"] == 0

    def test_loaded_service_is_ready(self, admin_graph):
        (response,) = run_ops(
            make_service(admin_graph), {"id": 1, "op": "health"}
        )
        health = response["result"]
        assert health["ok"] is True
        assert health["status"] == "ok"
        assert health["graphs"] == ["g"]
        assert health["last_error"] is None
        assert health["last_error_age_s"] is None
        assert health["uptime_s"] >= 0.0

    def test_error_degrades_status_but_not_ok(self, admin_graph):
        error, health = run_ops(
            make_service(admin_graph),
            {"id": 1, "op": "query", "graph": "g", "algorithm": "dijkstra",
             "source": 0},
            {"id": 2, "op": "health"},
        )
        assert error["ok"] is False
        result = health["result"]
        assert result["ok"] is True
        assert result["status"] == "degraded"
        assert "ServeError" in result["last_error"]
        assert result["last_error_age_s"] >= 0.0


class TestStats:
    def test_payload_validates_and_carries_latency_digest(
        self, admin_graph
    ):
        responses = run_ops(
            make_service(admin_graph),
            *[_query(i, i) for i in range(5)],
            {"id": 99, "op": "stats"},
        )
        stats = responses[-1]["result"]
        assert validate_payload("serve_stats", stats) == []
        assert stats["queries"] == 5
        assert stats["errors"] == 0
        assert stats["uptime_s"] >= 0.0
        hist = stats["latency"]["all"]
        assert hist["count"] == 5
        for key in ("p50", "p95", "p99", "mean", "min", "max"):
            assert key in hist
        # Per-algorithm digest too, and the registry snapshot rides
        # along for the Prometheus exporter.
        assert stats["latency"]["bfs"]["count"] == 5
        assert stats["metrics"]["counters"]["serve.queries"] == 5
        assert stats["gauges"]["serve.queue_depth"]["window_count"] > 0
        assert stats["graphs"]["g"]["result_cache_hit_rate"] == 0.0

    def test_bucketed_percentiles_agree_with_exact(self, admin_graph):
        """The acceptance contract: STATS p50/p95/p99 from the bounded
        buckets track exact percentiles over the served latencies
        within one histogram bucket."""
        responses = run_ops(
            make_service(admin_graph),
            *[_query(i, i % 11) for i in range(16)],
            {"id": 99, "op": "stats"},
        )
        served = sorted(r["result"]["latency_s"] for r in responses[:-1])
        hist = responses[-1]["result"]["latency"]["all"]
        tolerance = HIST_GROWTH ** 2
        for q, key in ((50, "p50"), (95, "p95"), (99, "p99")):
            # Exact interpolates between the two bracketing order
            # statistics; the digest answers within one bucket of one
            # of them.  With few, noisy samples the interpolation gap
            # itself can exceed a bucket, so the contract is checked
            # against the bracket, not the interpolated point.
            rank = (len(served) - 1) * (q / 100.0)
            lo, hi = served[int(rank)], served[min(int(rank) + 1,
                                                   len(served) - 1)]
            assert lo / tolerance <= hist[key] <= hi * tolerance, (
                key, hist[key], lo, hi,
            )
            assert exact_percentile(served, q) <= hi

    def test_validate_payload_flags_missing_keys(self):
        problems = validate_payload("serve_stats", {"queries": 1})
        assert any("uptime_s" in p for p in problems)
        assert validate_payload("bogus", {}) == ["unknown payload kind 'bogus'"]
        assert validate_payload("serve_health", None) == [
            "serve_health payload is NoneType, expected object"
        ]


class TestDumpOp:
    def test_dump_writes_the_ring(self, admin_graph, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        ring = FlightRecorder(capacity=16)
        with flight.override(ring):
            query, dump = run_ops(
                make_service(admin_graph),
                _query(1, 3),
                {"id": 2, "op": "dump"},
            )
        assert query["ok"]
        result = dump["result"]
        assert result["enabled"] is True
        assert result["retained"] >= 1
        records = flight.read_dump(result["path"])
        assert records[0]["reason"] == "serve:admin-dump"
        assert any(
            r.get("event") == "serve_query" for r in records[1:]
        ), "the served query must be in the ring"
