"""Query service end-to-end: protocol, coalescing bit-identity,
admission limits, result caching, error envelopes."""

import asyncio
import threading

import pytest

from repro.errors import ServeError
from repro.graphs import Graph, bfs, pagerank, sssp
from repro.serve import ServeClient, ServeConfig, run_in_thread
from repro.serve.server import QueryService
from repro.workloads import chung_lu


@pytest.fixture(scope="module")
def served_graph():
    return Graph(chung_lu(800, 6000, seed=21), name="served")


def make_service(graph=None, **overrides):
    config = ServeConfig(port=0, **overrides)
    service = QueryService(config)
    if graph is not None:
        service.registry.register("g", graph)
    return service


def run_ops(service, *requests):
    """Drive handle() for several requests on one event loop."""

    async def scenario():
        return [await service.handle(r) for r in requests]

    try:
        return asyncio.run(scenario())
    finally:
        service.close()


class TestOps:
    def test_ping(self, served_graph):
        (response,) = run_ops(make_service(), {"id": 1, "op": "ping"})
        assert response == {"id": 1, "ok": True, "result": {"pong": True}}

    def test_unknown_op_is_error_envelope(self):
        (response,) = run_ops(make_service(), {"id": 2, "op": "frobnicate"})
        assert response["ok"] is False
        assert "unknown op" in response["error"]

    def test_unknown_graph_is_error(self, served_graph):
        (response,) = run_ops(
            make_service(served_graph),
            {"id": 3, "op": "query", "graph": "missing", "algorithm": "bfs",
             "source": 0},
        )
        assert response["ok"] is False
        assert "not loaded" in response["error"]

    def test_unknown_algorithm_is_error(self, served_graph):
        (response,) = run_ops(
            make_service(served_graph),
            {"id": 4, "op": "query", "graph": "g", "algorithm": "dijkstra",
             "source": 0},
        )
        assert "unknown algorithm" in response["error"]

    def test_unknown_param_is_error(self, served_graph):
        (response,) = run_ops(
            make_service(served_graph),
            {"id": 5, "op": "query", "graph": "g", "algorithm": "bfs",
             "source": 0, "params": {"alpha": 0.2}},
        )
        assert "does not take params" in response["error"]

    def test_traversal_without_source_is_error(self, served_graph):
        (response,) = run_ops(
            make_service(served_graph),
            {"id": 6, "op": "query", "graph": "g", "algorithm": "bfs"},
        )
        assert "need a 'source'" in response["error"]

    def test_stats_shape(self, served_graph):
        ok, stats = run_ops(
            make_service(served_graph),
            {"id": 7, "op": "query", "graph": "g", "algorithm": "bfs",
             "source": 1},
            {"id": 8, "op": "stats"},
        )
        assert ok["ok"]
        result = stats["result"]
        assert result["queries"] == 1
        assert result["graphs"]["g"]["queries"] == 1
        assert result["coalescer"]["batches"] >= 0


class TestServedAnswers:
    def test_bfs_bit_identical_to_direct(self, served_graph):
        (response,) = run_ops(
            make_service(served_graph),
            {"id": 1, "op": "query", "graph": "g", "algorithm": "bfs",
             "source": 5},
        )
        direct = bfs(served_graph, 5)
        assert response["result"]["values"] == direct.values.tolist()
        assert response["result"]["converged"] == direct.converged

    def test_sssp_bit_identical_to_direct(self, served_graph):
        (response,) = run_ops(
            make_service(served_graph),
            {"id": 1, "op": "query", "graph": "g", "algorithm": "sssp",
             "source": 2},
        )
        assert (
            response["result"]["values"]
            == sssp(served_graph, 2).values.tolist()
        )

    def test_pagerank_bit_identical_to_direct(self, served_graph):
        (response,) = run_ops(
            make_service(served_graph),
            {"id": 1, "op": "query", "graph": "g", "algorithm": "pagerank",
             "params": {"max_iters": 4}},
        )
        direct = pagerank(served_graph, max_iters=4)
        assert response["result"]["values"] == direct.values.tolist()

    def test_coalesced_columns_bit_identical(self, served_graph):
        """Concurrent queries answered by ONE batch == sequential runs."""
        service = make_service(served_graph, coalesce_window_s=0.05)
        sources = [1, 2, 3, 4]

        async def scenario():
            return await asyncio.gather(
                *(
                    service.handle(
                        {"id": s, "op": "query", "graph": "g",
                         "algorithm": "bfs", "source": s}
                    )
                    for s in sources
                )
            )

        try:
            responses = asyncio.run(scenario())
        finally:
            service.close()
        widths = [r["result"]["coalesced_width"] for r in responses]
        assert widths == [4, 4, 4, 4]  # one batch answered all four
        assert service.coalescer.stats()["batches"] == 1
        for s, response in zip(sources, responses):
            assert (
                response["result"]["values"]
                == bfs(served_graph, s).values.tolist()
            )

    def test_result_cache_hit_runs_no_kernel(self, served_graph):
        service = make_service(served_graph)
        query = {"id": 1, "op": "query", "graph": "g", "algorithm": "bfs",
                 "source": 9}
        first, second = run_ops(service, query, dict(query, id=2))
        assert first["result"]["cached"] is False
        assert second["result"]["cached"] is True
        # Identical payload, and no second execution happened.
        assert second["result"]["values"] == first["result"]["values"]
        entry = service.registry.get("g")
        assert entry.batches == 1
        assert entry.results.hits == 1

    def test_result_cache_disabled(self, served_graph):
        service = make_service(served_graph, result_cache_size=0)
        query = {"id": 1, "op": "query", "graph": "g", "algorithm": "bfs",
                 "source": 9}
        first, second = run_ops(service, query, dict(query, id=2))
        assert second["result"]["cached"] is False
        assert service.registry.get("g").batches == 2


class TestAdmission:
    def test_concurrency_limit_enforced(self):
        """More graphs than slots: in-flight executions never exceed
        the admission limit even though queries arrive together."""
        service = make_service(concurrency=2)
        for i in range(5):
            service.registry.register(
                f"g{i}", Graph(chung_lu(600, 4000, seed=30 + i), name=f"g{i}")
            )

        async def scenario():
            return await asyncio.gather(
                *(
                    service.handle(
                        {"id": i, "op": "query", "graph": f"g{i}",
                         "algorithm": "bfs", "source": 1}
                    )
                    for i in range(5)
                )
            )

        try:
            responses = asyncio.run(scenario())
        finally:
            service.close()
        assert all(r["ok"] for r in responses)
        assert service.max_in_flight <= 2
        assert service.max_queue_depth >= 3  # the rest actually queued

    def test_per_graph_lock_serialises_one_graph(self, served_graph):
        service = make_service(served_graph, concurrency=4,
                               coalesce_window_s=-1.0)

        async def scenario():
            return await asyncio.gather(
                *(
                    service.handle(
                        {"id": s, "op": "query", "graph": "g",
                         "algorithm": "bfs", "source": s}
                    )
                    for s in [1, 2, 3]
                )
            )

        try:
            responses = asyncio.run(scenario())
        finally:
            service.close()
        assert all(r["ok"] for r in responses)
        # One stateful runtime per graph: never two executions at once.
        assert service.max_in_flight == 1


class TestSocketServer:
    def test_thread_hosted_roundtrip(self, served_graph):
        with run_in_thread(ServeConfig(port=0)) as handle:
            handle.service.registry.register("g", served_graph)
            with ServeClient(port=handle.port) as client:
                assert client.ping()
                response = client.query("g", "bfs", source=3)
                assert (
                    response["values"] == bfs(served_graph, 3).values.tolist()
                )
                assert client.stats()["queries"] == 1
                with pytest.raises(ServeError, match="not loaded"):
                    client.query("missing", "bfs", source=0)

    def test_concurrent_clients_coalesce(self, served_graph):
        config = ServeConfig(port=0, coalesce_window_s=0.05)
        with run_in_thread(config) as handle:
            handle.service.registry.register("g", served_graph)
            responses = [None] * 4

            def fire(i):
                with ServeClient(port=handle.port) as client:
                    responses[i] = client.query("g", "sssp", source=i + 1)

            threads = [
                threading.Thread(target=fire, args=(i,)) for i in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            stats = handle.service.coalescer.stats()
        assert all(r is not None for r in responses)
        assert stats["coalesced_queries"] == 4
        assert stats["max_width"] >= 2  # at least some landed together
        for i, response in enumerate(responses):
            assert (
                response["values"]
                == sssp(served_graph, i + 1).values.tolist()
            )

    def test_shutdown_op_stops_server(self, served_graph):
        handle = run_in_thread(ServeConfig(port=0))
        with ServeClient(port=handle.port) as client:
            client.shutdown()
        handle._thread.join(timeout=10)
        assert not handle._thread.is_alive()
