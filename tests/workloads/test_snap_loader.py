"""SNAP edge-list loader tests."""

import numpy as np
import pytest

from repro.graphs import Graph, bfs
from repro.workloads import load_snap_edgelist

SAMPLE = """\
# Directed graph (each unordered pair of nodes is saved once)
# FromNodeId\tToNodeId
10 20
10 30
20 30
30 10
30 30
10 20
"""


@pytest.fixture
def snap_file(tmp_path):
    p = tmp_path / "edges.txt"
    p.write_text(SAMPLE)
    return str(p)


class TestLoader:
    def test_compacts_ids(self, snap_file):
        m = load_snap_edgelist(snap_file)
        assert m.shape == (3, 3)  # ids 10/20/30 -> 0/1/2

    def test_drops_comments_duplicates_selfloops(self, snap_file):
        m = load_snap_edgelist(snap_file)
        # edges: 0->1, 0->2, 1->2, 2->0 (self-loop 30->30 and dup dropped)
        assert m.nnz == 4
        dense = m.to_dense()
        assert dense[0, 1] == 1.0 and dense[2, 0] == 1.0
        assert dense[2, 2] == 0.0

    def test_undirected_mirrors(self, snap_file):
        m = load_snap_edgelist(snap_file, undirected=True)
        dense = m.to_dense()
        assert np.array_equal(dense != 0, (dense != 0).T)

    def test_weighted_third_column(self, tmp_path):
        p = tmp_path / "w.txt"
        p.write_text("1 2 3.5\n2 3 1.25\n")
        m = load_snap_edgelist(str(p), weighted=True)
        assert m.to_dense()[0, 1] == 3.5

    def test_unweighted_ignores_third_column(self, tmp_path):
        p = tmp_path / "w.txt"
        p.write_text("1 2 3.5\n")
        m = load_snap_edgelist(str(p), weighted=False)
        assert m.to_dense()[0, 1] == 1.0

    def test_empty_file(self, tmp_path):
        p = tmp_path / "e.txt"
        p.write_text("# nothing\n")
        m = load_snap_edgelist(str(p))
        assert m.shape == (0, 0)

    def test_loaded_graph_runs_algorithms(self, snap_file):
        g = Graph(load_snap_edgelist(snap_file), name="snap")
        run = bfs(g, 0, geometry="1x2")
        assert run.values[0] == 0.0
        assert np.isfinite(run.values).all()  # strongly reachable sample
