"""Vertex-reordering tests."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.graphs import Graph, bfs, pagerank
from repro.workloads import chung_lu
from repro.workloads.reorder import (
    bfs_order,
    degree_order,
    permute_matrix,
    reorder_graph,
)


@pytest.fixture(scope="module")
def skewed():
    return chung_lu(1000, 10000, seed=23)


class TestDegreeOrder:
    def test_is_permutation(self, skewed):
        perm = degree_order(skewed)
        assert sorted(perm.tolist()) == list(range(skewed.n_rows))

    def test_hubs_first(self, skewed):
        perm = degree_order(skewed, by="total")
        deg = skewed.row_counts() + skewed.col_counts()
        hub = int(np.argmax(deg))
        assert perm[hub] == 0

    def test_degree_kinds(self, skewed):
        for by in ("in", "out", "total"):
            degree_order(skewed, by=by)
        with pytest.raises(WorkloadError):
            degree_order(skewed, by="random")


class TestBFSOrder:
    def test_is_permutation(self, skewed):
        perm = bfs_order(skewed)
        assert sorted(perm.tolist()) == list(range(skewed.n_rows))

    def test_source_numbered_zero(self, skewed):
        perm = bfs_order(skewed, source=42)
        assert perm[42] == 0

    def test_handles_disconnected(self):
        from repro.formats import COOMatrix

        m = COOMatrix(6, 6, [0, 3], [1, 4], [1.0, 1.0])
        perm = bfs_order(m, source=0)
        assert sorted(perm.tolist()) == list(range(6))


class TestPermute:
    def test_preserves_structure(self, skewed):
        perm = degree_order(skewed)
        out = permute_matrix(skewed, perm)
        assert out.nnz == skewed.nnz
        # degree multiset is invariant under relabeling
        assert sorted(out.row_counts()) == sorted(skewed.row_counts())

    def test_rejects_non_permutation(self, skewed):
        with pytest.raises(WorkloadError):
            permute_matrix(skewed, np.zeros(skewed.n_rows, dtype=np.int64))

    def test_algorithms_invariant_under_reordering(self, skewed):
        """Relabeling must not change results (up to the relabeling)."""
        g = Graph(skewed, name="orig")
        g2, perm = reorder_graph(g, "bfs")
        src = 7
        a = bfs(g, src, geometry="1x2").values
        b = bfs(g2, int(perm[src]), geometry="1x2").values
        assert np.allclose(
            np.nan_to_num(a, posinf=-1), np.nan_to_num(b[perm], posinf=-1)
        )

    def test_pagerank_invariant(self, skewed):
        g = Graph(skewed, name="orig")
        g2, perm = reorder_graph(g, "degree")
        a = pagerank(g, geometry="1x2", max_iters=5, tol=0.0).values
        b = pagerank(g2, geometry="1x2", max_iters=5, tol=0.0).values
        assert np.allclose(a, b[perm])

    def test_unknown_method_rejected(self, skewed):
        with pytest.raises(WorkloadError):
            reorder_graph(Graph(skewed), "rcm2")
