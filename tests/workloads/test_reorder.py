"""Vertex-reordering tests."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.graphs import Graph, bfs, pagerank
from repro.workloads import chung_lu, uniform_random
from repro.workloads.reorder import (
    ORDERING_METHODS,
    bfs_order,
    block_order,
    degree_order,
    permute_matrix,
    rcm_order,
    reorder_graph,
    reorder_matrix,
)


@pytest.fixture(scope="module")
def skewed():
    return chung_lu(1000, 10000, seed=23)


class TestDegreeOrder:
    def test_is_permutation(self, skewed):
        perm = degree_order(skewed)
        assert sorted(perm.tolist()) == list(range(skewed.n_rows))

    def test_hubs_first(self, skewed):
        perm = degree_order(skewed, by="total")
        deg = skewed.row_counts() + skewed.col_counts()
        hub = int(np.argmax(deg))
        assert perm[hub] == 0

    def test_degree_kinds(self, skewed):
        for by in ("in", "out", "total"):
            degree_order(skewed, by=by)
        with pytest.raises(WorkloadError):
            degree_order(skewed, by="random")


class TestBFSOrder:
    def test_is_permutation(self, skewed):
        perm = bfs_order(skewed)
        assert sorted(perm.tolist()) == list(range(skewed.n_rows))

    def test_source_numbered_zero(self, skewed):
        perm = bfs_order(skewed, source=42)
        assert perm[42] == 0

    def test_handles_disconnected(self):
        from repro.formats import COOMatrix

        m = COOMatrix(6, 6, [0, 3], [1, 4], [1.0, 1.0])
        perm = bfs_order(m, source=0)
        assert sorted(perm.tolist()) == list(range(6))


class TestPermute:
    def test_preserves_structure(self, skewed):
        perm = degree_order(skewed)
        out = permute_matrix(skewed, perm)
        assert out.nnz == skewed.nnz
        # degree multiset is invariant under relabeling
        assert sorted(out.row_counts()) == sorted(skewed.row_counts())

    def test_rejects_non_permutation(self, skewed):
        with pytest.raises(WorkloadError):
            permute_matrix(skewed, np.zeros(skewed.n_rows, dtype=np.int64))

    def test_algorithms_invariant_under_reordering(self, skewed):
        """Relabeling must not change results (up to the relabeling)."""
        g = Graph(skewed, name="orig")
        g2, perm = reorder_graph(g, "bfs")
        src = 7
        a = bfs(g, src, geometry="1x2").values
        b = bfs(g2, int(perm[src]), geometry="1x2").values
        assert np.allclose(
            np.nan_to_num(a, posinf=-1), np.nan_to_num(b[perm], posinf=-1)
        )

    def test_pagerank_invariant(self, skewed):
        g = Graph(skewed, name="orig")
        g2, perm = reorder_graph(g, "degree")
        a = pagerank(g, geometry="1x2", max_iters=5, tol=0.0).values
        b = pagerank(g2, geometry="1x2", max_iters=5, tol=0.0).values
        assert np.allclose(a, b[perm])

    def test_unknown_method_rejected(self, skewed):
        with pytest.raises(WorkloadError):
            reorder_graph(Graph(skewed), "rcm2")

    def test_all_methods_via_reorder_graph(self, skewed):
        g = Graph(skewed)
        for method in ORDERING_METHODS:
            g2, perm = reorder_graph(g, method)
            assert g2.n_edges == g.n_edges
            assert sorted(perm.tolist()) == list(range(skewed.n_rows))


class TestRCMOrder:
    def test_is_permutation(self, skewed):
        perm = rcm_order(skewed)
        assert sorted(perm.tolist()) == list(range(skewed.n_rows))

    def test_starts_at_lowest_degree(self, skewed):
        """RCM seeds at a minimum-degree vertex; reversal puts the seed
        LAST in the new numbering."""
        perm = rcm_order(skewed)
        deg = skewed.row_counts() + skewed.col_counts()
        seed = int(np.argmin(deg))
        assert perm[seed] == skewed.n_rows - 1

    def test_reverses_discovery_order(self):
        """On a path graph from the low-degree end, plain CM discovery is
        0,1,2,...; RCM must number it in reverse."""
        from repro.formats import COOMatrix

        n = 8
        m = COOMatrix(
            n, n, np.arange(n - 1), np.arange(1, n), np.ones(n - 1)
        )
        perm = rcm_order(m, source=0)
        assert perm.tolist() == list(range(n - 1, -1, -1))

    def test_reduces_bandwidth(self):
        """RCM exists to shrink bandwidth; check it does on a shuffled
        banded matrix."""
        from repro.formats import COOMatrix

        n = 200
        rows = np.arange(n - 1)
        cols = np.arange(1, n)
        m = COOMatrix(n, n, rows, cols, np.ones(n - 1))
        shuffle = np.random.default_rng(5).permutation(n)
        shuffled = permute_matrix(m, shuffle)
        perm = rcm_order(shuffled)
        out = permute_matrix(shuffled, perm)

        def bandwidth(coo):
            return int(np.abs(coo.rows - coo.cols).max())

        assert bandwidth(out) < bandwidth(shuffled)

    def test_distinct_from_bfs(self, skewed):
        assert not np.array_equal(rcm_order(skewed), bfs_order(skewed))


class TestBlockOrder:
    def test_is_permutation(self, skewed):
        perm = block_order(skewed)
        assert sorted(perm.tolist()) == list(range(skewed.n_rows))

    def test_single_block_is_degree_like(self, skewed):
        """With one block every vertex has the same owner, so the order
        is hubs-first."""
        perm = block_order(skewed, n_blocks=1)
        deg = skewed.row_counts() + skewed.col_counts()
        hub = int(np.argmax(deg))
        assert perm[hub] == 0


class TestRectangular:
    @pytest.fixture(scope="class")
    def rect(self):
        return uniform_random(300, n_cols=120, nnz=2400, seed=9)

    def test_square_perm_rejected_without_col_perm(self, rect):
        with pytest.raises(WorkloadError):
            permute_matrix(rect, np.arange(rect.n_rows))

    def test_separate_perms_roundtrip(self, rect):
        rng = np.random.default_rng(0)
        rp = rng.permutation(rect.n_rows)
        cp = rng.permutation(rect.n_cols)
        out = permute_matrix(rect, rp, col_perm=cp)
        # inverse perms restore the original coordinate multiset
        inv_r = np.empty_like(rp)
        inv_r[rp] = np.arange(len(rp))
        inv_c = np.empty_like(cp)
        inv_c[cp] = np.arange(len(cp))
        back = permute_matrix(out, inv_r, col_perm=inv_c)
        assert sorted(zip(back.rows.tolist(), back.cols.tolist())) == sorted(
            zip(rect.rows.tolist(), rect.cols.tolist())
        )

    def test_wrong_length_col_perm_rejected(self, rect):
        with pytest.raises(WorkloadError):
            permute_matrix(
                rect, np.arange(rect.n_rows), col_perm=np.arange(5)
            )

    @pytest.mark.parametrize("method", ORDERING_METHODS)
    def test_reorder_matrix_rectangular(self, rect, method):
        out, rp, cp = reorder_matrix(rect, method)
        assert out.shape == rect.shape
        assert out.nnz == rect.nnz
        assert sorted(rp.tolist()) == list(range(rect.n_rows))
        assert sorted(cp.tolist()) == list(range(rect.n_cols))
        # degree multisets per axis are invariant under relabeling
        assert sorted(out.row_counts()) == sorted(rect.row_counts())
        assert sorted(out.col_counts()) == sorted(rect.col_counts())

    def test_reorder_matrix_square_uses_one_perm(self, skewed):
        _, rp, cp = reorder_matrix(skewed, "degree")
        assert rp is cp


class TestScheduleStablePermute:
    def test_preserves_within_row_entry_order(self, skewed):
        """stable=True keeps each row's original entry sequence."""
        perm = degree_order(skewed)
        out = permute_matrix(skewed, perm, stable=True)
        # Walk the permuted rows back: within each new row, the entries
        # must appear in the original stored order.
        for new_row in (0, 1, int(perm[5])):
            sel_new = out.rows == new_row
            old_row = int(np.nonzero(perm == new_row)[0][0])
            sel_old = skewed.rows == old_row
            np.testing.assert_array_equal(
                out.cols[sel_new], perm[skewed.cols[sel_old]]
            )
            np.testing.assert_array_equal(
                out.vals[sel_new], skewed.vals[sel_old]
            )

    def test_rows_nondecreasing(self, skewed):
        out = permute_matrix(skewed, degree_order(skewed), stable=True)
        assert bool(np.all(np.diff(out.rows) >= 0))
