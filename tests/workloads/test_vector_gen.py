"""Frontier generator tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.workloads import FIG4_DENSITIES, FIG8_DENSITIES, density_sweep, random_frontier


class TestRandomFrontier:
    def test_target_density(self):
        f = random_frontier(1000, 0.05, seed=1)
        assert f.nnz == 50
        assert f.density == pytest.approx(0.05)

    def test_no_structural_zeros(self):
        f = random_frontier(1000, 0.2, seed=2)
        assert (f.values != 0).all()

    def test_extremes(self):
        assert random_frontier(100, 0.0, seed=3).nnz == 0
        assert random_frontier(100, 1.0, seed=4).nnz == 100

    def test_rejects_out_of_range(self):
        with pytest.raises(WorkloadError):
            random_frontier(10, 1.5)

    def test_reproducible(self):
        a = random_frontier(100, 0.3, seed=5)
        b = random_frontier(100, 0.3, seed=5)
        assert a.allclose(b)

    @given(st.integers(1, 2000), st.floats(0.0, 1.0), st.integers(0, 100))
    @settings(max_examples=60, deadline=None)
    def test_density_property(self, n, d, seed):
        f = random_frontier(n, d, seed=seed)
        assert 0 <= f.nnz <= n
        assert abs(f.nnz - d * n) <= 0.5 + 1e-9


class TestSweeps:
    def test_paper_axes(self):
        assert FIG4_DENSITIES == (0.0025, 0.005, 0.01, 0.02, 0.04)
        assert FIG8_DENSITIES[0] == 0.001 and FIG8_DENSITIES[-1] == 1.0

    def test_density_sweep_sizes(self):
        sweep = density_sweep(500, (0.01, 0.1), seed=6)
        assert [f.nnz for f in sweep] == [5, 50]

    def test_sweep_decorrelated(self):
        a, b = density_sweep(500, (0.1, 0.1), seed=7)
        assert set(a.indices.tolist()) != set(b.indices.tolist())
