"""Workload generator tests, incl. property-based and networkx checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.workloads import chung_lu, power_law_degrees, rmat, uniform_random


class TestUniform:
    def test_target_nnz_hit_when_sparse(self):
        m = uniform_random(1000, nnz=5000, seed=1)
        assert m.nnz == pytest.approx(5000, rel=0.01)

    def test_density_spec(self):
        m = uniform_random(500, density=0.01, seed=2)
        assert m.density == pytest.approx(0.01, rel=0.05)

    def test_rejects_both_specs(self):
        with pytest.raises(WorkloadError):
            uniform_random(10, nnz=5, density=0.1)

    def test_rejects_neither_spec(self):
        with pytest.raises(WorkloadError):
            uniform_random(10)

    def test_rejects_impossible_nnz(self):
        with pytest.raises(WorkloadError):
            uniform_random(4, nnz=100)

    def test_rejects_bad_density(self):
        with pytest.raises(WorkloadError):
            uniform_random(4, density=1.5)

    def test_reproducible(self):
        a = uniform_random(100, nnz=500, seed=7)
        b = uniform_random(100, nnz=500, seed=7)
        assert a.allclose(b)

    def test_weighted_values_in_range(self):
        m = uniform_random(100, nnz=500, seed=3, weighted=True)
        assert m.vals.min() >= 1.0 and m.vals.max() <= 10.0

    def test_unweighted_is_binary(self):
        m = uniform_random(100, nnz=500, seed=3, weighted=False)
        assert set(np.unique(m.vals)) <= {1.0}

    def test_no_self_loops_option(self):
        m = uniform_random(50, nnz=400, seed=4, remove_self_loops=True)
        assert not np.any(m.rows == m.cols)

    @given(st.integers(10, 300), st.integers(0, 1000), st.integers(0, 10_000))
    @settings(max_examples=50, deadline=None)
    def test_bounds_property(self, n, nnz, seed):
        nnz = min(nnz, n * n)
        m = uniform_random(n, nnz=nnz, seed=seed)
        assert m.nnz <= nnz
        assert m.shape == (n, n)
        if m.nnz:
            assert m.rows.max() < n and m.cols.max() < n


class TestChungLu:
    def test_skewed_degrees(self):
        m = chung_lu(2000, 20000, seed=5)
        deg = m.col_counts()
        assert deg.max() > 8 * max(deg.mean(), 1)

    def test_hub_cap(self):
        m = chung_lu(2000, 40000, seed=6)
        # default cap: 2*sqrt(E)
        assert m.col_counts().max() <= 3.0 * np.sqrt(40000)

    def test_uncapped_is_heavier(self):
        capped = chung_lu(2000, 40000, seed=6)
        raw = chung_lu(2000, 40000, seed=6, max_expected_degree=float("inf"))
        assert raw.col_counts().max() > capped.col_counts().max()

    def test_no_self_loops(self):
        m = chung_lu(500, 5000, seed=7)
        assert not np.any(m.rows == m.cols)

    def test_undirected_symmetric(self):
        m = chung_lu(300, 2000, seed=8, directed=False)
        dense = m.to_dense()
        assert np.allclose(dense, dense.T)

    def test_degree_tail_roughly_power_law(self):
        """Cross-check against networkx's expected-degree generator."""
        networkx = pytest.importorskip("networkx")
        w = power_law_degrees(500, exponent=2.1)
        w = w / w.sum() * 5000
        g = networkx.expected_degree_graph(w.tolist(), seed=1, selfloops=False)
        nx_max = max(dict(g.degree()).values())
        ours = chung_lu(500, 5000, seed=1, max_expected_degree=float("inf"))
        our_max = int(ours.col_counts().max() + ours.row_counts().max())
        # same order of magnitude of hub size
        assert 0.2 < our_max / max(nx_max, 1) < 8.0

    def test_rejects_negative_edges(self):
        with pytest.raises(WorkloadError):
            chung_lu(10, -1)

    def test_power_law_degrees_rejects_bad_exponent(self):
        with pytest.raises(WorkloadError):
            power_law_degrees(10, exponent=1.0)


class TestRMAT:
    def test_shape(self):
        m = rmat(8, edge_factor=8, seed=9)
        assert m.n_rows == 256
        assert m.nnz <= 256 * 8

    def test_skewed(self):
        m = rmat(10, edge_factor=16, seed=10)
        deg = m.row_counts()
        assert deg.max() > 4 * max(deg.mean(), 1)

    def test_rejects_bad_probabilities(self):
        with pytest.raises(WorkloadError):
            rmat(4, a=0.6, b=0.3, c=0.2)

    def test_reproducible(self):
        assert rmat(6, seed=11).allclose(rmat(6, seed=11))
