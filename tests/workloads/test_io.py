"""Matrix persistence tests."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.workloads import (
    cached_matrix,
    load_matrix_market,
    load_npz,
    save_matrix_market,
    save_npz,
    uniform_random,
)


class TestMatrixMarket:
    def test_round_trip(self, tmp_path, small_coo):
        path = str(tmp_path / "m.mtx")
        save_matrix_market(path, small_coo, comment="test matrix")
        back = load_matrix_market(path)
        assert back.allclose(small_coo)

    def test_scipy_can_read_ours(self, tmp_path, small_coo):
        import scipy.io

        path = str(tmp_path / "m.mtx")
        save_matrix_market(path, small_coo)
        m = scipy.io.mmread(path)
        assert np.allclose(m.toarray(), small_coo.to_dense())

    def test_we_can_read_scipys(self, tmp_path, small_coo):
        import scipy.io

        path = str(tmp_path / "m.mtx")
        scipy.io.mmwrite(path, small_coo.to_scipy())
        back = load_matrix_market(path)
        assert back.allclose(small_coo)

    def test_pattern_files_get_unit_values(self, tmp_path):
        path = tmp_path / "p.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern general\n"
            "2 2 2\n1 1\n2 2\n"
        )
        m = load_matrix_market(str(path))
        assert np.allclose(m.to_dense(), np.eye(2))

    def test_rejects_non_mm(self, tmp_path):
        path = tmp_path / "x.mtx"
        path.write_text("hello\n")
        with pytest.raises(FormatError):
            load_matrix_market(str(path))

    def test_rejects_array_format(self, tmp_path):
        path = tmp_path / "a.mtx"
        path.write_text("%%MatrixMarket matrix array real general\n2 2\n")
        with pytest.raises(FormatError):
            load_matrix_market(str(path))


class TestNpz:
    def test_round_trip(self, tmp_path, medium_coo):
        path = str(tmp_path / "m.npz")
        save_npz(path, medium_coo)
        assert load_npz(path).allclose(medium_coo)


class TestCache:
    def test_builds_once(self, tmp_path):
        calls = []

        def builder():
            calls.append(1)
            return uniform_random(50, nnz=100, seed=1)

        a = cached_matrix(str(tmp_path), "k", builder)
        b = cached_matrix(str(tmp_path), "k", builder)
        assert len(calls) == 1
        assert a.allclose(b)

    def test_distinct_keys(self, tmp_path):
        a = cached_matrix(
            str(tmp_path), "a", lambda: uniform_random(50, nnz=100, seed=1)
        )
        b = cached_matrix(
            str(tmp_path), "b", lambda: uniform_random(50, nnz=100, seed=2)
        )
        assert not a.allclose(b)
