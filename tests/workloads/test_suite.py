"""Table III suite and figure-matrix suite tests."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads import (
    FIG4_DIMENSIONS,
    TABLE3_GRAPHS,
    fig4_matrices,
    fig7_matrices,
    load_graph,
)


class TestTable3Specs:
    def test_all_five_rows(self):
        assert set(TABLE3_GRAPHS) == {
            "livejournal",
            "pokec",
            "youtube",
            "twitter",
            "vsp",
        }

    def test_paper_counts(self):
        assert TABLE3_GRAPHS["pokec"].vertices == 1_632_803
        assert TABLE3_GRAPHS["pokec"].edges == 30_622_564
        assert TABLE3_GRAPHS["livejournal"].edges == 68_992_772

    def test_directedness(self):
        assert TABLE3_GRAPHS["twitter"].directed
        assert not TABLE3_GRAPHS["youtube"].directed
        assert not TABLE3_GRAPHS["vsp"].directed

    def test_densities_match_paper_column(self):
        # Table III lists e.g. pokec at 1.2e-5, twitter at 2.7e-4
        assert TABLE3_GRAPHS["pokec"].density == pytest.approx(1.15e-5, rel=0.05)
        assert TABLE3_GRAPHS["twitter"].density == pytest.approx(2.7e-4, rel=0.05)


class TestGeneration:
    def test_scaled_size(self):
        g = load_graph("twitter", scale=8, seed=1)
        spec = TABLE3_GRAPHS["twitter"]
        assert g.n_vertices == spec.vertices // 8
        assert g.n_edges == pytest.approx(spec.edges // 8, rel=0.2)

    def test_avg_degree_preserved(self):
        g = load_graph("twitter", scale=8, seed=1)
        spec = TABLE3_GRAPHS["twitter"]
        assert g.n_edges / g.n_vertices == pytest.approx(
            spec.avg_degree, rel=0.25
        )

    def test_undirected_generation_symmetric(self):
        g = load_graph("vsp", scale=32, seed=2)
        dense = g.adjacency.to_dense() != 0
        assert np.array_equal(dense, dense.T)

    def test_social_graphs_are_skewed(self):
        g = load_graph("pokec", scale=128, seed=3)
        deg = g.in_degrees()
        assert deg.max() > 5 * max(deg.mean(), 1)

    def test_vsp_is_uniform(self):
        g = load_graph("vsp", scale=32, seed=4)
        deg = g.in_degrees()
        assert deg.max() < 4 * deg.mean()

    def test_unknown_name_rejected(self):
        with pytest.raises(WorkloadError):
            load_graph("orkut")

    def test_bad_scale_rejected(self):
        with pytest.raises(WorkloadError):
            TABLE3_GRAPHS["vsp"].generate(scale=0)

    def test_extreme_scale_capped(self):
        g = load_graph("vsp", scale=1024, seed=5)
        assert g.n_edges <= g.n_vertices**2


class TestFigureSuites:
    def test_fig4_dimensions(self):
        assert [n for n, _ in FIG4_DIMENSIONS] == [
            131_072,
            262_144,
            524_288,
            1_048_576,
        ]
        assert all(nnz == 4_000_000 for _, nnz in FIG4_DIMENSIONS)

    def test_fig4_scaled_generation(self):
        mats = fig4_matrices(scale=64)
        assert len(mats) == 4
        assert mats[0].n_rows == 131_072 // 64
        # "the same number of non-zero elements"
        nnzs = [m.nnz for m in mats]
        assert max(nnzs) / min(nnzs) < 1.1

    def test_fig7_scaled_generation(self):
        mats = fig7_matrices(scale=64)
        assert len(mats) == 4
        deg = mats[0].col_counts()
        assert deg.max() > 4 * max(deg.mean(), 1)  # power-law
