"""Skew-statistics validation of the workload generators.

These tests back DESIGN.md's substitution claim: the synthesised social
graphs must actually be heavy-tailed, and the uniform ones must not be.
"""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads import chung_lu, load_graph, uniform_random
from repro.workloads.validate import degree_gini, hill_tail_exponent, is_heavy_tailed


class TestEstimators:
    def test_pure_power_law_recovered(self, rng):
        """Pareto(alpha) samples: the Hill estimate must land near alpha."""
        for alpha in (2.0, 2.5, 3.0):
            samples = (rng.pareto(alpha - 1.0, size=200_000) + 1.0) * 5.0
            est = hill_tail_exponent(samples)
            assert est == pytest.approx(alpha, rel=0.15)

    def test_exponential_tail_rejected(self, rng):
        samples = rng.poisson(20.0, size=100_000) + 1
        assert hill_tail_exponent(samples) > 4.0

    def test_needs_enough_samples(self):
        with pytest.raises(WorkloadError):
            hill_tail_exponent([1.0, 2.0])

    def test_gini_bounds(self, rng):
        equal = np.full(1000, 7.0)
        assert degree_gini(equal) == pytest.approx(0.0, abs=1e-9)
        concentrated = np.zeros(1000)
        concentrated[0] = 100.0
        assert degree_gini(concentrated) > 0.95

    def test_gini_rejects_empty(self):
        with pytest.raises(WorkloadError):
            degree_gini([])


class TestGenerators:
    def test_chung_lu_is_heavy_tailed(self):
        m = chung_lu(30_000, 300_000, seed=3)
        deg = m.row_counts() + m.col_counts()
        assert is_heavy_tailed(deg)

    def test_uniform_is_not(self):
        m = uniform_random(30_000, nnz=300_000, seed=4)
        deg = m.row_counts() + m.col_counts()
        assert not is_heavy_tailed(deg)
        assert degree_gini(deg) < 0.45

    def test_table3_social_standins_heavy_tailed(self):
        g = load_graph("pokec", scale=64, seed=5)
        deg = (g.in_degrees() + g.out_degrees()).astype(float)
        assert is_heavy_tailed(deg)

    def test_table3_vsp_uniform(self):
        g = load_graph("vsp", scale=16, seed=6)
        deg = (g.in_degrees() + g.out_degrees()).astype(float)
        assert not is_heavy_tailed(deg)
