"""Tests for :mod:`repro.perf` — counters, timers, and the microbench."""

import json

import numpy as np
import pytest

from repro import perf
from repro.hardware.cache import BankedCache
from repro.hardware.params import DEFAULT_PARAMS


@pytest.fixture(autouse=True)
def fresh_counters():
    perf.counters.reset()
    yield
    perf.counters.reset()


class TestCounters:
    def test_reset_zeroes_everything(self):
        perf.counters.kernel_executions = 3
        perf.counters.trace_accesses = 7
        perf.counters.add_time("x", 0.5)
        perf.counters.reset()
        snap = perf.counters.snapshot()
        assert snap["kernel_executions"] == 0
        assert snap["trace_accesses"] == 0
        assert snap["wall_seconds"] == {}

    def test_timed_accumulates(self):
        with perf.timed("block"):
            pass
        with perf.timed("block"):
            pass
        assert perf.counters.wall_seconds["block"] >= 0.0
        assert len(perf.counters.wall_seconds) == 1

    def test_trace_replay_counts_accesses(self):
        cache = BankedCache(2, DEFAULT_PARAMS)
        addrs = np.arange(500, dtype=np.int64)
        cache.run_trace(addrs, np.zeros(500, dtype=bool))
        assert perf.counters.trace_accesses == 500

    def test_snapshot_is_a_copy(self):
        snap = perf.counters.snapshot()
        snap["kernel_executions"] = 99
        assert perf.counters.kernel_executions == 0


class TestMicrobench:
    def test_small_run_counters_identical(self):
        result = perf.microbench(n=5_000, n_banks=2, repeats=1)
        assert result["counters_identical"]
        assert {"reference", "numpy"} <= set(result["engines"])
        for row in result["engines"].values():
            assert row["seconds"] > 0
            assert row["macc_per_s"] > 0
            assert len(row["counters"]) == 3
        assert result["engines"]["reference"]["speedup_vs_reference"] == 1.0

    def test_result_is_json_serializable(self):
        result = perf.microbench(n=2_000, n_banks=1, repeats=1)
        parsed = json.loads(json.dumps(result))
        assert parsed["n_accesses"] == 2_000

    def test_main_prints_json_line(self, capsys):
        rc = perf.main(["--n", "3000", "--banks", "2", "--repeats", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        payload = json.loads(out.strip().splitlines()[-1])
        assert payload["counters_identical"]
