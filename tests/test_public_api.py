"""Top-level package surface tests."""

import doctest

import repro


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_module_doctest(self):
        results = doctest.testmod(repro, verbose=False)
        assert results.failed == 0
        assert results.attempted > 0

    def test_core_workflow_through_top_level(self):
        import numpy as np

        graph = repro.Graph.from_edges(5, [0, 1, 2, 3], [1, 2, 3, 4])
        rt = repro.CoSparseRuntime(graph.operand, "1x2")
        run = repro.bfs(graph, 0, runtime=rt)
        assert np.array_equal(run.values, [0, 1, 2, 3, 4])
