"""CLI coverage: ``python -m repro.obs`` and ``python -m repro --trace-out``."""

import json
import os

import pytest

from repro.cli import main as repro_main
from repro.obs.cli import main as obs_main


@pytest.fixture
def demo_base(tmp_path):
    return str(tmp_path / "demo")


@pytest.fixture
def demo_export(demo_base, capsys):
    assert obs_main(["demo", "--out", demo_base, "--n", "600"]) == 0
    capsys.readouterr()
    return demo_base


class TestDemo:
    def test_demo_writes_both_formats(self, demo_export):
        assert os.path.exists(demo_export + ".jsonl")
        assert os.path.exists(demo_export + ".trace.json")
        with open(demo_export + ".trace.json") as fh:
            payload = json.load(fh)
        assert payload["traceEvents"]

    def test_demo_output_mentions_validation(self, demo_base, capsys):
        assert obs_main(["demo", "--out", demo_base, "--n", "600"]) == 0
        out = capsys.readouterr().out
        assert "schema v1 OK" in out
        assert "decision sequence matches" in out


class TestSubcommands:
    def test_summarize(self, demo_export, capsys):
        assert obs_main(["summarize", demo_export + ".jsonl"]) == 0
        out = capsys.readouterr().out
        assert "spans" in out and "decisions:" in out

    def test_diff_self(self, demo_export, capsys):
        jsonl = demo_export + ".jsonl"
        assert obs_main(["diff", jsonl, jsonl]) == 0
        assert "identical" in capsys.readouterr().out

    def test_agreement(self, demo_export, capsys):
        assert obs_main(["agreement", demo_export + ".jsonl"]) == 0
        assert "tree vs oracle" in capsys.readouterr().out

    def test_validate_clean(self, demo_export, capsys):
        assert obs_main(["validate", demo_export + ".jsonl"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_validate_flags_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type": "mystery"}\n')
        assert obs_main(["validate", str(bad)]) == 1


class TestReproTraceOut:
    @pytest.fixture(autouse=True)
    def hermetic_caches(self, tmp_path, monkeypatch):
        # A warm pricing cache would legitimately price the grid with
        # zero kernel executions — no kernel spans.  These tests assert
        # on the traced kernels, so they must run cold.
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.setenv("REPRO_PRICING_CACHE", "0")

    def test_artifact_with_trace_out(self, tmp_path, capsys):
        trace = str(tmp_path / "fig4.trace.json")
        assert repro_main(["fig4", "--scale", "64", "--trace-out", trace]) == 0
        out = capsys.readouterr().out
        assert "trace written" in out
        with open(trace) as fh:
            payload = json.load(fh)
        names = {e["name"] for e in payload["traceEvents"]}
        assert "artifact.fig4" in names
        assert any(n.startswith("kernel.") for n in names)
        assert os.path.exists(trace + ".jsonl")

    def test_trace_out_does_not_leak_tracer(self, tmp_path, capsys):
        from repro.obs import active

        trace = str(tmp_path / "t.json")
        assert repro_main(["fig4", "--scale", "64", "--trace-out", trace]) == 0
        capsys.readouterr()
        assert not active().enabled
