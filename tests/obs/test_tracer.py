"""Tracer core: null object, installation, nesting, counters, metrics."""

import pytest

from repro.obs import (
    MetricsRegistry,
    NullTracer,
    Tracer,
    WarningEvent,
    active,
    enabled,
    install,
    override,
    traced,
)
from repro.obs.tracer import _NULL_SPAN
from repro.perf import counters, timed


class TestNullObject:
    def test_active_defaults_to_null(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        install(None)
        tracer = active()
        assert not tracer.enabled
        assert not enabled()

    def test_null_span_is_shared_and_inert(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        install(None)
        tracer = active()
        span = tracer.span("anything", foo=1)
        assert span is _NULL_SPAN
        with span as s:
            s.set(bar=2)  # must be a silent no-op
        tracer.event(WarningEvent(source="test", message="ignored"))

    def test_null_metrics_keeps_nothing(self):
        tracer = NullTracer()
        tracer.metrics.inc("x")
        assert tracer.metrics.snapshot()["counters"] == {}


class TestInstallation:
    def test_override_wins_and_restores(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        install(None)
        tracer = Tracer(label="scoped")
        with override(tracer) as installed:
            assert installed is tracer
            assert active() is tracer
            assert enabled()
        assert not active().enabled

    def test_env_var_enables(self, monkeypatch):
        install(None)
        monkeypatch.setenv("REPRO_TRACE", "1")
        assert active().enabled
        assert active() is active()  # one lazy global instance

    def test_env_var_falsey_values(self, monkeypatch):
        for value in ("", "0", "false", "off", "no", "FALSE"):
            monkeypatch.setenv("REPRO_TRACE", value)
            install(None)  # re-reads the environment
            assert not active().enabled

    def test_install_null_forces_off_despite_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        forced = NullTracer()
        with override(forced):
            assert active() is forced
            assert not enabled()


class TestSpans:
    def test_nesting_records_parents(self):
        tracer = Tracer()
        with override(tracer):
            with tracer.span("outer") as outer:
                with tracer.span("inner") as inner:
                    assert inner.parent_id == outer.span_id
        spans = {s["name"]: s for s in tracer.span_records()}
        assert spans["inner"]["parent"] == spans["outer"]["id"]
        assert spans["outer"]["parent"] is None
        # completion order: inner closes first
        assert [s["name"] for s in tracer.span_records()] == ["inner", "outer"]

    def test_span_times_and_attrs(self):
        tracer = Tracer()
        with tracer.span("t", mode="SC") as sp:
            sp.set(cycles=123.0)
        (rec,) = tracer.span_records()
        assert rec["dur_s"] >= 0.0
        assert rec["start_s"] >= 0.0
        assert rec["attrs"] == {"mode": "SC", "cycles": 123.0}

    def test_counter_deltas_are_recorded(self):
        tracer = Tracer()
        with tracer.span("work"):
            counters.kernel_executions += 2
            counters.kernel_probe_discarded += 1
        counters.kernel_executions -= 2
        counters.kernel_probe_discarded -= 1
        (rec,) = tracer.span_records()
        assert rec["counters"] == {
            "kernel_executions": 2,
            "kernel_probe_discarded": 1,
        }

    def test_exception_marks_span(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("x")
        (rec,) = tracer.span_records()
        assert rec["error"] == "ValueError"

    def test_jsonable_attr_coercion(self):
        from repro.hardware import HWMode

        tracer = Tracer()
        with tracer.span("t", mode=HWMode.SCS, cols=(1, 2)):
            pass
        (rec,) = tracer.span_records()
        assert rec["attrs"] == {"mode": "SCS", "cols": [1, 2]}


class TestTracedDecorator:
    def test_off_forwards_directly(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        install(None)

        @traced("test.fn", capture=("mode",))
        def fn(x, mode=None):
            return x + 1

        assert fn(1, mode="SC") == 2

    def test_on_wraps_in_span_with_captured_kwargs(self):
        @traced("test.fn", capture=("mode",))
        def fn(x, mode=None):
            return x + 1

        tracer = Tracer()
        with override(tracer):
            assert fn(1, mode="SC") == 2
        (rec,) = tracer.span_records()
        assert rec["name"] == "test.fn"
        assert rec["attrs"] == {"mode": "SC"}

    def test_preserves_function_name(self):
        @traced("test.fn")
        def my_kernel():
            pass

        assert my_kernel.__name__ == "my_kernel"


class TestMetrics:
    def test_inc_and_observe(self):
        reg = MetricsRegistry()
        reg.inc("hits")
        reg.inc("hits", 2)
        reg.observe("lat", 0.5)
        reg.observe("lat", 1.5)
        snap = reg.snapshot()
        assert snap["counters"] == {"hits": 3.0}
        obs = snap["observations"]["lat"]
        assert obs["count"] == 2
        assert obs["total"] == 2.0
        assert obs["min"] == 0.5
        assert obs["max"] == 1.5

    def test_timed_feeds_tracer_metrics(self):
        tracer = Tracer()
        with override(tracer):
            with timed("unit_test_block"):
                pass
        snap = tracer.metrics.snapshot()
        assert "wall.unit_test_block" in snap["observations"]
        counters.wall_seconds.pop("unit_test_block", None)
