"""Metrics registry v2: bounded histograms, windowed gauges, snapshot
merging, and the thread-safety regression the serve stack depends on."""

import math
import threading

import pytest

from repro.obs.metrics import (
    GAUGE_MAX_SAMPLES,
    HIST_BUCKETS,
    HIST_FLOOR,
    HIST_GROWTH,
    Histogram,
    MetricsRegistry,
    WindowedGauge,
)


class TestHistogram:
    def test_exact_moments_bucketed_quantiles(self):
        hist = Histogram()
        values = [1e-4, 2e-4, 4e-4, 8e-4, 1.6e-3]
        for v in values:
            hist.observe(v)
        assert hist.count == 5
        assert hist.total == pytest.approx(sum(values))
        assert hist.min == pytest.approx(min(values))
        assert hist.max == pytest.approx(max(values))
        assert hist.mean == pytest.approx(sum(values) / 5)
        # The median's bucket contains the sample itself.
        lo, hi = Histogram.bucket_bounds(Histogram.bucket_index(4e-4))
        assert lo <= hist.quantile(50) < hi

    def test_bucket_index_clamps_under_and_overflow(self):
        assert Histogram.bucket_index(0.0) == 0
        assert Histogram.bucket_index(HIST_FLOOR / 10) == 0
        assert Histogram.bucket_index(1e30) == HIST_BUCKETS - 1
        # Monotonic along the whole range.
        previous = -1
        value = HIST_FLOOR / 2
        while value < 1e5:
            index = Histogram.bucket_index(value)
            assert index >= previous
            previous = index
            value *= 1.7

    def test_bucket_bounds_partition_the_axis(self):
        for i in range(0, HIST_BUCKETS - 1, 7):
            lo, hi = Histogram.bucket_bounds(i)
            assert hi == pytest.approx(lo * HIST_GROWTH)
            next_lo, _ = Histogram.bucket_bounds(i + 1)
            assert next_lo == pytest.approx(hi)

    def test_snapshot_roundtrip_and_merge(self):
        a, b = Histogram(), Histogram()
        for v in (1e-3, 2e-3, 5e-3):
            a.observe(v)
        for v in (1e-2, 3e-2):
            b.observe(v)
        restored = Histogram.from_snapshot(a.snapshot())
        assert restored.counts == a.counts
        assert restored.count == a.count
        assert restored.quantile(50) == a.quantile(50)
        merged = Histogram.from_snapshot(a.snapshot())
        merged.merge(b)
        assert merged.count == 5
        assert merged.total == pytest.approx(a.total + b.total)
        assert merged.min == a.min
        assert merged.max == b.max

    def test_empty_snapshot_has_no_quantiles(self):
        snap = Histogram().snapshot()
        assert snap["count"] == 0
        assert "p50" not in snap and "mean" not in snap


class TestWindowedGauge:
    def test_window_expires_old_samples(self):
        g = WindowedGauge(window_s=10.0)
        g.set(5.0, now_s=0.0)
        g.set(9.0, now_s=2.0)
        snap = g.snapshot(now_s=3.0)
        assert snap["window_count"] == 2
        assert snap["window_mean"] == pytest.approx(7.0)
        assert snap["window_max"] == 9.0
        # Past the horizon the window drains, but last/peak survive.
        snap = g.snapshot(now_s=50.0)
        assert snap["window_count"] == 0
        assert snap["last"] == 9.0
        assert snap["peak"] == 9.0

    def test_sample_cap_bounds_memory(self):
        g = WindowedGauge(window_s=math.inf)
        for i in range(GAUGE_MAX_SAMPLES + 50):
            g.set(float(i), now_s=float(i) * 1e-3)
        assert len(g.samples) == GAUGE_MAX_SAMPLES


class TestRegistry:
    def test_all_four_sections_snapshot(self):
        reg = MetricsRegistry()
        reg.inc("queries")
        reg.inc("queries", 2.0)
        reg.observe("width", 4.0)
        reg.observe("width", 6.0)
        reg.observe_hist("latency_s", 1e-3)
        reg.gauge("depth", 3.0, now_s=0.0)
        snap = reg.snapshot()
        assert snap["counters"]["queries"] == 3.0
        assert snap["observations"]["width"] == {
            "count": 2.0,
            "total": 10.0,
            "min": 4.0,
            "max": 6.0,
        }
        assert snap["histograms"]["latency_s"]["count"] == 1
        assert snap["gauges"]["depth"]["last"] == 3.0

    def test_merge_snapshot_adds_and_merges(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for reg, n in ((a, 3), (b, 4)):
            for _ in range(n):
                reg.inc("queries")
                reg.observe("width", float(n))
                reg.observe_hist("latency_s", 1e-3 * n)
        a.merge_snapshot(b.snapshot())
        snap = a.snapshot()
        assert snap["counters"]["queries"] == 7.0
        assert snap["observations"]["width"]["count"] == 7.0
        assert snap["histograms"]["latency_s"]["count"] == 7

    def test_concurrent_hammer_loses_no_updates(self):
        """Regression: inc/observe were read-modify-write without a
        lock, so an 8-thread hammer on one registry dropped updates."""
        reg = MetricsRegistry()
        n_threads, n_iter = 8, 2000
        start = threading.Barrier(n_threads)

        def hammer():
            start.wait()
            for i in range(n_iter):
                reg.inc("hits")
                reg.observe("width", float(i % 7))
                reg.observe_hist("latency_s", 1e-4 * (1 + i % 5))
                reg.gauge("depth", float(i % 3))

        threads = [
            threading.Thread(target=hammer) for _ in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = reg.snapshot()
        expected = n_threads * n_iter
        assert snap["counters"]["hits"] == expected
        assert snap["observations"]["width"]["count"] == expected
        assert snap["histograms"]["latency_s"]["count"] == expected
        assert sum(
            snap["histograms"]["latency_s"]["buckets"].values()
        ) == expected
