"""Flight recorder: ring wraparound, dump format, tracer mirroring,
and the dump-on-sanitizer-violation post-mortem path."""

import os

import pytest

from repro.analysis import sanitize
from repro.errors import SimulationError
from repro.obs import flight
from repro.obs.events import SCHEMA_VERSION, WarningEvent
from repro.obs.flight import FlightRecorder, read_dump
from repro.obs.tracer import Tracer, override


@pytest.fixture(autouse=True)
def _fresh_ring():
    """Each test gets its own ring; nothing leaks into the process
    recorder other tests (or the serve suite) share."""
    ring = FlightRecorder(capacity=8)
    with flight.override(ring):
        yield ring


class TestRing:
    def test_wraparound_keeps_the_last_n(self, _fresh_ring):
        for i in range(20):
            _fresh_ring.record({"type": "event", "seq": i})
        assert len(_fresh_ring) == 8
        retained = [r["seq"] for r in _fresh_ring.snapshot()]
        assert retained == list(range(12, 20))
        assert _fresh_ring.recorded == 20

    def test_record_event_serialises_with_ring_epoch(self, _fresh_ring):
        _fresh_ring.record_event(WarningEvent(source="test", message="m"))
        (record,) = _fresh_ring.snapshot()
        assert record["type"] == "event"
        assert record["event"] == "warning"
        assert record["t_s"] >= 0.0

    def test_capacity_zero_disables_everything(self, tmp_path):
        off = FlightRecorder(capacity=0)
        assert not off.enabled
        off.record({"type": "event"})
        assert len(off) == 0
        assert off.dump("test", directory=str(tmp_path)) is None
        assert list(tmp_path.iterdir()) == []

    def test_env_capacity(self, monkeypatch):
        monkeypatch.setenv("REPRO_FLIGHT", "3")
        assert flight._capacity_from_env() == 3
        monkeypatch.setenv("REPRO_FLIGHT", "junk")
        assert flight._capacity_from_env() == flight.DEFAULT_CAPACITY


class TestDump:
    def test_dump_and_read_roundtrip(self, _fresh_ring, tmp_path):
        for i in range(12):
            _fresh_ring.record({"type": "event", "seq": i})
        path = _fresh_ring.dump("unit-test", directory=str(tmp_path))
        assert path is not None and os.path.exists(path)
        header, *records = read_dump(path)
        assert header["type"] == "flight_header"
        assert header["schema"] == SCHEMA_VERSION
        assert header["reason"] == "unit-test"
        assert header["retained"] == 8
        assert header["recorded"] == 12
        assert [r["seq"] for r in records] == list(range(4, 12))

    def test_dumps_get_distinct_names(self, _fresh_ring, tmp_path):
        _fresh_ring.record({"type": "event"})
        first = _fresh_ring.dump("a", directory=str(tmp_path))
        second = _fresh_ring.dump("b", directory=str(tmp_path))
        assert first != second
        assert _fresh_ring.dumps == 2

    def test_default_dir_under_cache(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert flight.default_dump_dir() == str(tmp_path / "flight")


class TestFeeds:
    def test_tracer_mirrors_spans_and_events(self, _fresh_ring):
        tracer = Tracer(label="flight-test")
        with override(tracer):
            with tracer.span("region"):
                pass
            tracer.event(WarningEvent(source="test", message="m"))
        kinds = [
            (r["type"], r.get("event")) for r in _fresh_ring.snapshot()
        ]
        assert ("span", None) in kinds
        assert ("event", "warning") in kinds

    def test_sanitizer_violation_dumps_the_ring(
        self, _fresh_ring, monkeypatch, tmp_path
    ):
        """The post-mortem contract: a SimulationError raised by the
        sanitizer leaves a flight dump on disk even with tracing off."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        san = sanitize.Sanitizer()
        import numpy as np

        with pytest.raises(SimulationError, match="lost"):
            san.check_histogram("h", np.array([3, 4]), 8)
        dump_dir = tmp_path / "flight"
        dumps = sorted(dump_dir.iterdir())
        assert len(dumps) == 1
        header, *records = read_dump(str(dumps[0]))
        assert header["reason"] == "sanitizer:h"
        violations = [
            r for r in records if r.get("event") == "sanitizer_violation"
        ]
        assert violations and "lost" in violations[-1]["message"]
