"""The disabled tracer must be (nearly) free on the SpMV hot path.

ISSUE budget: tracing off may cost at most 2% of an spmv invocation.
The instrumentation a disabled run pays per invocation is a handful of
``active()`` lookups and null-span context entries, so the test measures
that hook cost directly — at a generous 100 hooks per invocation, far
above the real count — and compares it against the measured wall time of
one real ``spmv`` call.
"""

import time

import numpy as np

from repro.core import CoSparseRuntime
from repro.obs.tracer import active, install
from repro.spmv import spmv_semiring
from repro.workloads import random_frontier

#: Null hooks charged per spmv invocation (real count is well under 40:
#: a few spans in spmv/decide/kernel/price, the traced kernel wrappers,
#: and the convert spans).
_HOOKS_PER_SPMV = 100
#: The ISSUE's overhead budget for disabled tracing.
_MAX_OVERHEAD_FRACTION = 0.02


def _null_hook_seconds(hooks: int) -> float:
    """Wall time of ``hooks`` disabled active()+span() round trips."""
    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        for _ in range(hooks):
            tracer = active()
            if tracer.enabled:  # the guard the hot paths use
                raise AssertionError("tracer must be disabled here")
            with tracer.span("overhead", x=1):
                pass
        best = min(best, time.perf_counter() - t0)
    return best


def test_disabled_tracer_within_budget(medium_coo, monkeypatch):
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    install(None)
    assert not active().enabled

    rt = CoSparseRuntime(medium_coo, "2x8", policy="oracle")
    semiring = spmv_semiring()
    frontier = random_frontier(medium_coo.n_cols, 0.01, seed=5)
    rt.spmv(frontier, semiring)  # warm caches/partitions

    spmv_s = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        rt.spmv(frontier, semiring)
        spmv_s = min(spmv_s, time.perf_counter() - t0)

    hook_s = _null_hook_seconds(_HOOKS_PER_SPMV)
    assert hook_s < _MAX_OVERHEAD_FRACTION * spmv_s, (
        f"{_HOOKS_PER_SPMV} disabled-tracer hooks cost {hook_s * 1e6:.1f} us "
        f"vs spmv {spmv_s * 1e6:.1f} us — over the "
        f"{_MAX_OVERHEAD_FRACTION:.0%} budget"
    )
