"""Obs-test hygiene: never leak a live tracer into other test modules."""

import pytest

from repro.obs.tracer import install


@pytest.fixture(autouse=True)
def _reset_tracer_state():
    """Clear the installed tracer and the cached REPRO_TRACE decision
    after every test (monkeypatch restores the env var itself, but the
    tracer module caches its first read)."""
    yield
    install(None)
