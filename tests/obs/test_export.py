"""End-to-end export tests: a traced run must round-trip bit-identically.

The central acceptance check: run BFS under the oracle policy with a
live tracer, export JSONL, parse it back, and the per-iteration
``(algorithm, hw_mode, density)`` sequence must equal the live
:class:`ReconfigurationLog` record for record — floats included.
"""

import json

import numpy as np
import pytest

from repro.analysis import sanitize
from repro.core import CoSparseRuntime
from repro.errors import ConfigurationError, SimulationError
from repro.graphs import bfs, bfs_multi
from repro.obs import (
    SCHEMA_VERSION,
    Tracer,
    agreement,
    decision_sequence,
    diff,
    override,
    read_jsonl,
    summarize,
    validate_file,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.export import chrome_trace_events
from repro.perf import counters


def traced_bfs(graph, policy="oracle", label=None):
    tracer = Tracer(label=label or f"bfs-{policy}")
    with override(tracer):
        rt = CoSparseRuntime(graph.operand, "2x8", policy=policy)
        run = bfs(graph, 0, runtime=rt)
    return tracer, run


def live_sequence(log):
    return [
        (r.algorithm, r.hw_mode.label, r.vector_density) for r in log.records
    ]


class TestJsonlRoundTrip:
    @pytest.mark.parametrize("policy", ["oracle", "tree", "static"])
    def test_decision_sequence_bit_identical(
        self, small_graph, tmp_path, policy
    ):
        tracer, run = traced_bfs(small_graph, policy)
        path = str(tmp_path / "run.jsonl")
        write_jsonl(tracer, path)
        data = read_jsonl(path)
        assert decision_sequence(data) == live_sequence(run.log)

    def test_schema_validates_clean(self, small_graph, tmp_path):
        tracer, _ = traced_bfs(small_graph)
        path = str(tmp_path / "run.jsonl")
        write_jsonl(tracer, path)
        assert validate_file(path) == []

    def test_header_and_metrics_records(self, small_graph, tmp_path):
        tracer, _ = traced_bfs(small_graph, label="named-run")
        path = str(tmp_path / "run.jsonl")
        write_jsonl(tracer, path)
        data = read_jsonl(path)
        assert data.header["schema"] == SCHEMA_VERSION
        assert data.label == "named-run"
        assert "counters" in data.metrics

    def test_read_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps({"type": "header", "schema": 99, "label": "x"}) + "\n"
        )
        with pytest.raises(ConfigurationError):
            read_jsonl(str(path))

    def test_validate_flags_missing_keys(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps({"type": "event", "event": "decision", "t_s": 0.0})
            + "\n"
        )
        problems = validate_file(str(path))
        assert any("missing key" in p for p in problems)
        assert any("no header" in p for p in problems)


class TestDecisionAudit:
    def test_every_iteration_audited(self, small_graph):
        tracer, run = traced_bfs(small_graph, "oracle")
        decisions = tracer.event_records("decision")
        assert len(decisions) == len(run.log)
        for event, record in zip(decisions, run.log.records):
            assert event["iteration"] == record.iteration
            assert event["policy"] == "oracle"
            assert event["tree_algorithm"] in ("ip", "op")
            assert event["cvd"] is not None
            assert event["thresholds"]  # live DecisionThresholds as dict
            # the oracle prices the full Fig. 2 candidate set
            assert set(event["alternatives"]) >= {"IP/SC", "OP/PC"}
            for alt in event["alternatives"].values():
                assert alt["cycles"] > 0

    def test_alternatives_match_log(self, small_graph):
        tracer, run = traced_bfs(small_graph, "oracle")
        for event, record in zip(
            tracer.event_records("decision"), run.log.records
        ):
            assert set(event["alternatives"]) == set(record.alternatives)
            for label, alt in event["alternatives"].items():
                assert alt["cycles"] == record.alternatives[label].cycles

    def test_tree_policy_emits_shadow_identical_to_choice(self, small_graph):
        tracer, run = traced_bfs(small_graph, "tree")
        for event, record in zip(
            tracer.event_records("decision"), run.log.records
        ):
            # under the tree policy the shadow IS the decision
            assert event["tree_algorithm"] == record.algorithm
            assert event["tree_hw_mode"] == record.hw_mode.label

    def test_reconfig_events_match_log_switches(self, small_graph):
        tracer, run = traced_bfs(small_graph, "oracle")
        reconfigs = tracer.event_records("reconfig")
        assert len(reconfigs) == sum(
            1
            for r in run.log.records
            if r.sw_switched or r.hw_switched
        )
        assert sum(1 for e in reconfigs if e["sw_switched"]) == (
            run.log.sw_switches
        )
        assert sum(1 for e in reconfigs if e["hw_switched"]) == (
            run.log.hw_switches
        )
        for event in reconfigs:
            assert event["from_config"] != event["to_config"]


class TestBatchAudit:
    def test_batch_decisions_in_group_order(self, small_graph):
        tracer = Tracer()
        with override(tracer):
            rt = CoSparseRuntime(small_graph.operand, "2x8", policy="oracle")
            run = bfs_multi(small_graph, [0, 1, 2], runtime=rt)
        decisions = tracer.event_records("decision")
        assert len(decisions) == len(run.log)
        for event, record in zip(decisions, run.log.records):
            assert event["algorithm"] == record.algorithm
            assert event["hw_mode"] == record.hw_mode.label
            assert event["vector_density"] == record.vector_density
            assert event["batch_id"] == record.batch_id
            assert event["batch_column"] == record.batch_column

    def test_probe_discarded_counter_and_events(self, small_graph):
        counters.reset()
        tracer = Tracer()
        with override(tracer):
            rt = CoSparseRuntime(small_graph.operand, "2x8", policy="oracle")
            run = bfs_multi(small_graph, [0, 1, 2], runtime=rt)
        # the oracle prices (and discards) one probe per batch column
        assert counters.kernel_probe_discarded == len(run.log)
        discarded = tracer.event_records("probe_discarded")
        assert len(discarded) == len(run.log)
        for event in discarded:
            assert event["batch_id"] is not None
            assert event["algorithm"] in ("ip", "op")
        counters.reset()

    def test_tree_policy_discards_nothing(self, small_graph):
        counters.reset()
        rt = CoSparseRuntime(small_graph.operand, "2x8", policy="tree")
        bfs_multi(small_graph, [0, 1], runtime=rt)
        assert counters.kernel_probe_discarded == 0
        counters.reset()


class TestSanitizerEvents:
    def test_violation_emits_event_before_raise(self):
        tracer = Tracer()
        with override(tracer):
            with pytest.raises(SimulationError, match=r"\[sanitizer\]"):
                sanitize.Sanitizer().check("unit/test", False, "boom")
        (event,) = tracer.event_records("sanitizer_violation")
        assert event["label"] == "unit/test"
        assert event["message"] == "boom"


class TestChromeTrace:
    def test_export_loads_and_mirrors_spans(self, small_graph, tmp_path):
        tracer, _ = traced_bfs(small_graph)
        path = str(tmp_path / "run.trace.json")
        write_chrome_trace(tracer, path)
        with open(path) as fh:
            payload = json.load(fh)
        events = payload["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        assert len(complete) == len(tracer.span_records())
        assert len(instants) == len(tracer.event_records())
        names = {e["name"] for e in complete}
        assert {"algorithm.bfs", "spmv", "decide", "kernel"} <= names
        for e in complete:
            assert e["ts"] >= 0 and e["dur"] >= 0

    def test_chrome_events_from_parsed_data(self, small_graph, tmp_path):
        tracer, _ = traced_bfs(small_graph)
        path = str(tmp_path / "run.jsonl")
        write_jsonl(tracer, path)
        from_tracer = chrome_trace_events(tracer)
        from_data = chrome_trace_events(read_jsonl(path))
        assert len(from_tracer) == len(from_data)


class TestAnalysis:
    def test_agreement_rates(self, small_graph, tmp_path):
        tracer, _ = traced_bfs(small_graph, "oracle")
        path = str(tmp_path / "run.jsonl")
        write_jsonl(tracer, path)
        ag = agreement(read_jsonl(path))
        assert ag["decisions"] == ag["audited"] > 0
        assert ag["priced"] == ag["decisions"]
        assert 0.0 <= ag["tree_vs_oracle_rate"] <= 1.0

    def test_summarize_mentions_spans_and_decisions(
        self, small_graph, tmp_path
    ):
        tracer, run = traced_bfs(small_graph)
        path = str(tmp_path / "run.jsonl")
        write_jsonl(tracer, path)
        text = summarize(read_jsonl(path))
        assert "spans" in text
        assert "decisions:" in text
        assert f"decisions: {len(run.log)}" in text

    def test_diff_identical_runs(self, small_graph, tmp_path):
        tracer, _ = traced_bfs(small_graph, label="a")
        pa, pb = str(tmp_path / "a.jsonl"), str(tmp_path / "b.jsonl")
        write_jsonl(tracer, pa)
        write_jsonl(tracer, pb)
        text = diff(read_jsonl(pa), read_jsonl(pb))
        assert "decision sequences identical" in text

    def test_diff_reports_divergence(self, small_graph, tmp_path):
        ta, _ = traced_bfs(small_graph, "oracle", label="oracle")
        tb, _ = traced_bfs(small_graph, "static", label="static")
        pa, pb = str(tmp_path / "a.jsonl"), str(tmp_path / "b.jsonl")
        write_jsonl(ta, pa)
        write_jsonl(tb, pb)
        text = diff(read_jsonl(pa), read_jsonl(pb))
        # a static IP/SC run cannot match the oracle's OP phases
        assert "differ" in text or "identical" in text


class TestEnergyWarning:
    def test_none_energy_emits_warning_event(self):
        from repro.core import IterationRecord, ReconfigurationLog
        from repro.formats import ConversionCost
        from repro.hardware import HWMode, MemCounters, RunReport

        log = ReconfigurationLog()
        log.append(
            IterationRecord(
                iteration=0,
                vector_density=0.1,
                algorithm="ip",
                hw_mode=HWMode.SC,
                report=RunReport(
                    cycles=10.0, counters=MemCounters(), energy_j=None
                ),
                conversion=ConversionCost(),
            )
        )
        tracer = Tracer()
        with override(tracer):
            assert log.total_energy_j is None
        (event,) = tracer.event_records("warning")
        assert event["source"] == "ReconfigurationLog"
        assert "no record carries energy" in event["message"]


class TestTraceFidelityIntegration:
    def test_cache_span_under_trace_fidelity(self, small_graph):
        tracer = Tracer()
        with override(tracer):
            rt = CoSparseRuntime(
                small_graph.operand,
                "2x4",
                policy="static",
                fidelity="trace",
                with_trace=True,
            )
            bfs(small_graph, 0, runtime=rt, max_iters=2)
        cache_spans = [
            s for s in tracer.span_records() if s["name"] == "cache.run_trace"
        ]
        assert cache_spans
        for span in cache_spans:
            assert span["attrs"]["accesses"] >= span["attrs"]["hits"] >= 0
            assert span["counters"].get("trace_accesses", 0) > 0
