"""Bench history and the regression gate: record schema, atomic
appends, rolling-baseline comparison, and the CLI exit codes
``make bench-regress`` relies on."""

import json
from types import SimpleNamespace

import pytest

from repro.obs import cli
from repro.obs.bench import (
    BENCH_SCHEMA_VERSION,
    append_record,
    bench_record,
    load_history,
    record_result,
    regress,
    validate_history,
)


def _record(bench, n, **metrics):
    return bench_record(
        bench, metrics, git_rev=f"rev{n}", timestamp_s=float(n)
    )


def _seed_history(path, head_wall_s, baseline_wall_s=1.0, runs=3):
    """A history: `runs` steady baseline records, then one HEAD record."""
    for n in range(runs):
        append_record(
            _record("fig4", n, driver_wall_s=baseline_wall_s), str(path)
        )
    append_record(
        _record("fig4", runs, driver_wall_s=head_wall_s), str(path)
    )
    return str(path)


class TestHistoryFile:
    def test_append_load_roundtrip(self, tmp_path):
        path = tmp_path / "bench-history.jsonl"
        append_record(_record("a", 0, wall_s=1.5), str(path))
        append_record(_record("b", 1, wall_s=2.5), str(path))
        records = load_history(str(path))
        assert [r["bench"] for r in records] == ["a", "b"]
        assert records[0]["schema"] == BENCH_SCHEMA_VERSION
        assert records[0]["metrics"] == {"wall_s": 1.5}
        assert records[0]["git_rev"] == "rev0"

    def test_record_result_keeps_only_wall_metrics(self, tmp_path):
        path = tmp_path / "bench-history.jsonl"
        result = SimpleNamespace(
            experiment="fig4",
            timings={"driver_wall_s": 2.0, "rows": 12.0},
        )
        assert record_result(result, str(path)) == str(path)
        (record,) = load_history(str(path))
        assert record["metrics"] == {"driver_wall_s": 2.0}
        # A result with no wall-clock metric records nothing.
        empty = SimpleNamespace(experiment="t3", timings={"rows": 1.0})
        assert record_result(empty, str(path)) is None
        assert len(load_history(str(path))) == 1

    def test_validate_clean_and_broken(self, tmp_path):
        path = tmp_path / "bench-history.jsonl"
        append_record(_record("a", 0, wall_s=1.0), str(path))
        assert validate_history(str(path)) == []
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("not json\n")
            fh.write(json.dumps({"bench": "x"}) + "\n")
            fh.write(
                json.dumps(
                    {
                        "schema": 99,
                        "bench": "y",
                        "metrics": {"wall_s": "fast"},
                        "git_rev": "r",
                        "timestamp_s": 0.0,
                    }
                )
                + "\n"
            )
        problems = validate_history(str(path))
        assert any("not JSON" in p for p in problems)
        assert any("missing keys" in p for p in problems)
        assert any("schema" in p for p in problems)
        assert any("not a number" in p for p in problems)

    def test_validate_missing_file(self, tmp_path):
        problems = validate_history(str(tmp_path / "absent.jsonl"))
        assert problems and "not found" in problems[0]


class TestRegress:
    def test_clean_history_passes(self, tmp_path):
        path = _seed_history(
            tmp_path / "h.jsonl", head_wall_s=1.1, baseline_wall_s=1.0
        )
        rows = regress(path)
        assert rows and not any(r["regressed"] for r in rows)
        (row,) = rows
        assert row["baseline"] == pytest.approx(1.0)
        assert row["ratio"] == pytest.approx(1.1)

    def test_detects_injected_2x_slowdown(self, tmp_path):
        path = _seed_history(
            tmp_path / "h.jsonl", head_wall_s=2.0, baseline_wall_s=1.0
        )
        (row,) = regress(path)
        assert row["regressed"]
        assert row["ratio"] == pytest.approx(2.0)

    def test_baseline_is_median_not_mean(self, tmp_path):
        path = tmp_path / "h.jsonl"
        # One anomalous 10s run must not drag the baseline up.
        for n, wall in enumerate((1.0, 10.0, 1.0, 1.0)):
            append_record(
                _record("fig4", n, driver_wall_s=wall), str(path)
            )
        append_record(_record("fig4", 9, driver_wall_s=2.0), str(path))
        (row,) = regress(str(path))
        assert row["baseline"] == pytest.approx(1.0)
        assert row["regressed"]

    def test_key_prefix_filters_benches(self, tmp_path):
        path = tmp_path / "h.jsonl"
        for bench in ("cluster_bench", "fig4"):
            for n, wall in enumerate((1.0, 1.0, 2.0)):
                append_record(
                    _record(bench, n, driver_wall_s=wall), str(path)
                )
        everything = regress(str(path))
        assert {r["bench"] for r in everything} == {"cluster_bench", "fig4"}
        only_cluster = regress(str(path), key_prefix="cluster")
        assert [r["bench"] for r in only_cluster] == ["cluster_bench"]
        assert only_cluster[0]["regressed"]
        assert regress(str(path), key_prefix="nope") == []

    def test_non_wall_metrics_and_first_runs_ignored(self, tmp_path):
        path = tmp_path / "h.jsonl"
        append_record(
            _record("fig4", 0, driver_wall_s=1.0, rows=10.0), str(path)
        )
        append_record(
            _record("fig4", 1, driver_wall_s=1.0, rows=99.0), str(path)
        )
        append_record(_record("t3", 2, driver_wall_s=5.0), str(path))
        rows = regress(str(path))
        # `rows` is not `_s`-suffixed; t3 has no prior run to baseline.
        assert [r["metric"] for r in rows] == ["driver_wall_s"]


class TestCli:
    def test_regress_exit_codes(self, tmp_path, capsys):
        clean = _seed_history(tmp_path / "clean.jsonl", head_wall_s=1.0)
        assert cli.main(["regress", "--history", clean]) == 0
        assert "PASS" in capsys.readouterr().out
        slow = _seed_history(tmp_path / "slow.jsonl", head_wall_s=2.0)
        assert cli.main(["regress", "--history", slow]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_regress_key_flag(self, tmp_path, capsys):
        slow = _seed_history(tmp_path / "h.jsonl", head_wall_s=2.0)
        # fig4 regressed, but --key scopes the gate away from it
        assert cli.main(["regress", "--history", slow, "--key", "serve"]) == 0
        assert "nothing to compare" in capsys.readouterr().out
        assert cli.main(["regress", "--history", slow, "--key", "fig"]) == 1

    def test_regress_empty_history_passes(self, tmp_path, capsys):
        path = tmp_path / "h.jsonl"
        append_record(_record("fig4", 0, driver_wall_s=1.0), str(path))
        assert cli.main(["regress", "--history", str(path)]) == 0
        assert "nothing to compare" in capsys.readouterr().out

    def test_validate_dispatches_to_bench_schema(self, tmp_path, capsys):
        path = tmp_path / "bench-history.jsonl"
        append_record(_record("fig4", 0, driver_wall_s=1.0), str(path))
        assert cli.main(["validate", str(path)]) == 0
        assert "bench-history schema" in capsys.readouterr().out
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps({"bench": "x"}) + "\n")
        assert cli.main(["validate", str(path)]) == 1

    def test_export_prom_from_saved_snapshot(self, tmp_path, capsys):
        from repro.obs.metrics import MetricsRegistry

        reg = MetricsRegistry()
        reg.inc("serve.queries", 3)
        reg.observe_hist("serve.latency_s", 1e-3)
        path = tmp_path / "snap.json"
        path.write_text(json.dumps(reg.snapshot()))
        assert cli.main(["export-prom", "--file", str(path)]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_serve_queries counter" in out
        assert "repro_serve_queries 3" in out
        assert "# TYPE repro_serve_latency_s histogram" in out
        assert 'repro_serve_latency_s_bucket{le="+Inf"} 1' in out
        assert "repro_serve_latency_s_count 1" in out
