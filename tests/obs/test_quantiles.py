"""Shared percentile math: exact-vs-numpy parity and the exact-vs-
bucketed agreement contract the serve STATS surface relies on."""

import numpy as np
import pytest

from repro.obs.metrics import HIST_GROWTH, Histogram
from repro.obs.quantiles import (
    bucket_quantile,
    exact_percentile,
    summary_quantiles,
)

#: The pinned contract: a bucketed percentile is the bucket's geometric
#: midpoint, so it sits within one bucket (factor HIST_GROWTH each way,
#: plus interpolation slack) of the exact-sample percentile.
AGREEMENT_FACTOR = HIST_GROWTH ** 2


class TestExactPercentile:
    def test_matches_numpy_linear_interpolation(self):
        rng = np.random.default_rng(11)
        samples = rng.uniform(1e-5, 1e-1, size=403).tolist()
        for q in (0, 1, 25, 50, 75, 95, 99, 100):
            assert exact_percentile(samples, q) == pytest.approx(
                float(np.percentile(samples, q)), abs=1e-15
            )

    def test_single_sample_and_endpoints(self):
        assert exact_percentile([0.25], 99) == 0.25
        samples = [3.0, 1.0, 2.0]
        assert exact_percentile(samples, 0) == 1.0
        assert exact_percentile(samples, 100) == 3.0
        assert exact_percentile(samples, 50) == 2.0

    def test_rejects_empty_and_out_of_range(self):
        with pytest.raises(ValueError):
            exact_percentile([], 50)
        with pytest.raises(ValueError):
            exact_percentile([1.0], -1)
        with pytest.raises(ValueError):
            exact_percentile([1.0], 101)


class TestBucketQuantile:
    def test_walks_to_the_right_bucket(self):
        rows = [(1.0, 2.0, 3), (2.0, 4.0, 6), (4.0, 8.0, 1)]
        # ranks 0..2 land in the first bucket, 3..8 in the second.
        assert bucket_quantile(rows, 0) == pytest.approx((1.0 * 2.0) ** 0.5)
        assert bucket_quantile(rows, 50) == pytest.approx((2.0 * 4.0) ** 0.5)
        assert bucket_quantile(rows, 100) == pytest.approx((4.0 * 8.0) ** 0.5)

    def test_summary_quantiles_match_individual_calls(self):
        rows = [(1.0, 2.0, 10), (2.0, 4.0, 10)]
        assert summary_quantiles(rows, (50.0, 95.0)) == [
            bucket_quantile(rows, 50.0),
            bucket_quantile(rows, 95.0),
        ]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            bucket_quantile([], 50)
        with pytest.raises(ValueError):
            bucket_quantile([(1.0, 2.0, 0)], 50)


class TestAgreementContract:
    """The reason both paths share this module: for any sample stream,
    the bucketed answer tracks the exact answer within one histogram
    bucket's resolution."""

    @pytest.mark.parametrize("seed", [0, 7, 23])
    def test_bucketed_within_one_bucket_of_exact(self, seed):
        rng = np.random.default_rng(seed)
        # Latency-shaped draw: lognormal spanning ~3 orders of magnitude.
        samples = np.exp(rng.normal(-7.0, 1.2, size=800)).tolist()
        hist = Histogram()
        for s in samples:
            hist.observe(s)
        for q in (50, 90, 95, 99):
            exact = exact_percentile(samples, q)
            bucketed = hist.quantile(q)
            ratio = bucketed / exact
            assert 1.0 / AGREEMENT_FACTOR <= ratio <= AGREEMENT_FACTOR, (
                q,
                ratio,
            )
