"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.formats import COOMatrix, CSCMatrix, SparseVector
from repro.hardware import Geometry
from repro.graphs import Graph
from repro.workloads import chung_lu, uniform_random


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_dense(rng):
    """A 40x40 dense array with ~15% non-zeros (easy oracle checks)."""
    mask = rng.random((40, 40)) < 0.15
    return mask * rng.uniform(0.5, 2.0, size=(40, 40))


@pytest.fixture
def small_coo(small_dense):
    return COOMatrix.from_dense(small_dense)


@pytest.fixture
def small_csc(small_coo):
    return CSCMatrix.from_coo(small_coo)


@pytest.fixture
def medium_coo():
    """A 2000x2000 uniform matrix with ~20k entries."""
    return uniform_random(2000, nnz=20000, seed=77)


@pytest.fixture
def medium_csc(medium_coo):
    return CSCMatrix.from_coo(medium_coo)


@pytest.fixture
def powerlaw_coo():
    """A skewed 3000-vertex graph adjacency (~30k edges)."""
    return chung_lu(3000, 30000, seed=7)


@pytest.fixture
def small_graph(powerlaw_coo):
    return Graph(powerlaw_coo, name="fixture")


@pytest.fixture
def sparse_frontier(medium_coo, rng):
    idx = rng.choice(medium_coo.n_cols, 50, replace=False)
    return SparseVector(medium_coo.n_cols, idx, rng.uniform(0.5, 1.5, 50))


@pytest.fixture
def geom24():
    return Geometry(2, 4)


@pytest.fixture
def geom44():
    return Geometry(4, 4)
