"""Frontier helper tests."""

import numpy as np
import pytest

from repro.graphs import FrontierTrace, frontier_from_mask, single_vertex_frontier


class TestHelpers:
    def test_single_vertex(self):
        f = single_vertex_frontier(10, 3, value=0.0)
        assert f.nnz == 1
        assert f.indices[0] == 3
        assert f.values[0] == 0.0

    def test_from_mask(self):
        mask = np.asarray([True, False, True])
        vals = np.asarray([5.0, 6.0, 7.0])
        f = frontier_from_mask(mask, vals)
        assert list(f.indices) == [0, 2]
        assert list(f.values) == [5.0, 7.0]

    def test_from_empty_mask(self):
        f = frontier_from_mask(np.zeros(5, dtype=bool), np.zeros(5))
        assert f.nnz == 0


class TestTrace:
    def test_densities(self):
        t = FrontierTrace(100, [])
        t.record(single_vertex_frontier(100, 0))
        t.record(frontier_from_mask(np.ones(100, dtype=bool), np.ones(100)))
        assert t.densities == [0.01, 1.0]
        assert t.peak_density == 1.0

    def test_empty_trace(self):
        assert FrontierTrace(10, []).peak_density == 0.0
