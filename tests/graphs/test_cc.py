"""Connected-components (extension algorithm) tests."""

import numpy as np
import pytest

from repro.graphs import Graph, connected_components


class TestCC:
    def test_matches_networkx(self):
        networkx = pytest.importorskip("networkx")
        g_nx = networkx.gnp_random_graph(250, 0.008, seed=5, directed=True)
        graph = Graph.from_networkx(g_nx)
        run = connected_components(graph, geometry="2x4")
        for comp in networkx.weakly_connected_components(g_nx):
            labels = {run.values[v] for v in comp}
            assert len(labels) == 1
            assert labels.pop() == min(comp)

    def test_isolated_vertices_self_label(self):
        g = Graph.from_edges(5, [0], [1])
        run = connected_components(g, geometry="1x2")
        assert run.values[2] == 2 and run.values[4] == 4

    def test_single_component_chain(self):
        n = 30
        g = Graph.from_edges(n, np.arange(n - 1), np.arange(1, n))
        run = connected_components(g, geometry="1x2")
        assert np.all(run.values == 0)
        assert run.converged

    def test_direction_ignored(self):
        """Weak connectivity: a reversed edge still joins components."""
        g = Graph.from_edges(4, [1, 3], [0, 2])
        run = connected_components(g, geometry="1x2")
        assert run.values[0] == run.values[1] == 0
        assert run.values[2] == run.values[3] == 2

    def test_reconfigures_as_labels_converge(self):
        from repro.workloads import chung_lu

        g = Graph(chung_lu(2000, 16000, seed=2), name="cc")
        run = connected_components(g, geometry="2x4")
        labels = set(run.log.config_sequence())
        assert any(l.startswith("IP/") for l in labels)
        assert any(l.startswith("OP/") for l in labels)

    def test_max_iters_cap(self):
        n = 50
        g = Graph.from_edges(n, np.arange(n - 1), np.arange(1, n))
        run = connected_components(g, geometry="1x2", max_iters=2)
        assert run.iterations == 2
        assert not run.converged
