"""Betweenness-centrality (extension algorithm) tests."""

import numpy as np
import pytest

from repro.graphs import Graph, betweenness_centrality


class TestBC:
    def test_exact_matches_networkx(self):
        networkx = pytest.importorskip("networkx")
        g_nx = networkx.gnp_random_graph(50, 0.1, seed=7, directed=True)
        g = Graph.from_networkx(g_nx)
        run = betweenness_centrality(g, geometry="1x2")
        ref = networkx.betweenness_centrality(g_nx, normalized=False)
        for v in range(g.n_vertices):
            assert run.values[v] == pytest.approx(ref[v], abs=1e-9)

    def test_path_graph(self):
        # 0 -> 1 -> 2 -> 3: middle vertices carry all pairs through them
        g = Graph.from_edges(4, [0, 1, 2], [1, 2, 3])
        run = betweenness_centrality(g, geometry="1x2")
        assert np.allclose(run.values, [0.0, 2.0, 2.0, 0.0])

    def test_star_center(self):
        # in-star + out-star through vertex 0
        g = Graph.from_edges(5, [1, 2, 0, 0], [0, 0, 3, 4])
        run = betweenness_centrality(g, geometry="1x2")
        assert run.values[0] == pytest.approx(4.0)  # 2 sources x 2 sinks

    def test_equal_shortest_paths_split(self):
        # two parallel 2-hop routes 0->{1,2}->3: each middle gets 0.5
        g = Graph.from_edges(4, [0, 0, 1, 2], [1, 2, 3, 3])
        run = betweenness_centrality(g, geometry="1x2")
        assert run.values[1] == pytest.approx(0.5)
        assert run.values[2] == pytest.approx(0.5)

    def test_sampled_sources_subset(self):
        networkx = pytest.importorskip("networkx")
        g_nx = networkx.gnp_random_graph(40, 0.12, seed=8, directed=True)
        g = Graph.from_networkx(g_nx)
        run = betweenness_centrality(g, sources=[0, 5], geometry="1x2")
        # manual Brandes restricted to the two sources
        ref = np.zeros(40)
        for s in (0, 5):
            full = networkx.betweenness_centrality_subset(
                g_nx, sources=[s], targets=list(g_nx.nodes()), normalized=False
            )
            for v, x in full.items():
                ref[v] += x
        assert np.allclose(run.values, ref, atol=1e-9)

    def test_forward_phase_reconfigures(self):
        from repro.workloads import chung_lu

        g = Graph(chung_lu(3000, 30000, seed=4), name="bc")
        hub = int(np.argmax(g.out_degrees()))
        run = betweenness_centrality(g, sources=[hub], geometry="2x4")
        labels = set(run.log.config_sequence())
        assert len(labels) >= 2  # the swell forces at least one switch
