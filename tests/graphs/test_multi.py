"""Multi-source drivers over the batched SpMV path."""

import dataclasses

import numpy as np
import pytest

from repro.errors import AlgorithmError
from repro.core import CoSparseRuntime
from repro.graphs import Graph, bfs, bfs_multi, sssp, sssp_multi
from repro.hardware.params import DEFAULT_PARAMS
from repro.workloads import uniform_random


@pytest.fixture
def graph():
    return Graph(uniform_random(400, nnz=2400, seed=9), name="multi")


SOURCES = [0, 7, 42]


class TestBfsMulti:
    def test_columns_match_single_source(self, graph):
        run = bfs_multi(graph, SOURCES, geometry="2x4")
        for q, s in enumerate(SOURCES):
            single = bfs(graph, s, geometry="2x4")
            assert np.array_equal(run.values[:, q], single.values)
        assert run.converged

    def test_records_carry_batch_provenance(self, graph):
        run = bfs_multi(graph, SOURCES, geometry="2x4")
        assert all(r.batch_id is not None for r in run.log.records)
        assert all(r.batch_column is not None for r in run.log.records)
        # supersteps are distinct batches
        assert len({r.batch_id for r in run.log.records}) == len(
            run.frontier_trace.sizes
        )

    def test_converged_columns_retire(self, graph):
        run = bfs_multi(graph, SOURCES, geometry="2x4")
        per_round = {}
        for r in run.log.records:
            per_round.setdefault(r.batch_id, 0)
            per_round[r.batch_id] += 1
        # Batch width never grows and is bounded by K.
        widths = [per_round[b] for b in sorted(per_round)]
        assert max(widths) <= len(SOURCES)
        assert all(a >= b for a, b in zip(widths, widths[1:]))

    def test_iteration_cap(self, graph):
        run = bfs_multi(graph, SOURCES, geometry="2x4", max_iters=1)
        assert not run.converged
        assert len({r.batch_id for r in run.log.records}) == 1

    def test_needs_sources(self, graph):
        with pytest.raises(AlgorithmError):
            bfs_multi(graph, [], geometry="2x4")

    def test_duplicate_sources_allowed(self, graph):
        run = bfs_multi(graph, [3, 3], geometry="2x4")
        assert np.array_equal(run.values[:, 0], run.values[:, 1])


class TestSsspMulti:
    def test_columns_match_single_source(self, graph):
        run = sssp_multi(graph, SOURCES, geometry="2x4")
        for q, s in enumerate(SOURCES):
            single = sssp(graph, s, geometry="2x4")
            assert np.array_equal(run.values[:, q], single.values)
        assert run.converged

    def test_trace_records_total_live_frontier(self, graph):
        run = sssp_multi(graph, SOURCES, geometry="2x4")
        assert run.frontier_trace.sizes[0] == len(SOURCES)
        assert all(s > 0 for s in run.frontier_trace.sizes)


class TestTimeSecondsClock:
    """AlgorithmRun.time_s derives from the runtime's configured clock."""

    def test_default_clock_is_1ghz(self, graph):
        run = bfs(graph, 0, geometry="2x4")
        assert run.log.clock_hz == 1.0e9
        assert run.time_s == pytest.approx(run.total_cycles * 1e-9)

    def test_custom_clock_threads_through(self, graph):
        params = dataclasses.replace(DEFAULT_PARAMS, clock_hz=2.0e9)
        rt = CoSparseRuntime(graph.operand, "2x4", params=params)
        run = bfs(graph, 0, runtime=rt)
        assert run.log.clock_hz == 2.0e9
        assert run.time_s == pytest.approx(run.total_cycles / 2.0e9)
        # reset_log (used by ensure_runtime) preserves the clock
        rt.reset_log()
        assert rt.log.clock_hz == 2.0e9
