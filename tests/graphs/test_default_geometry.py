"""Regression for the duplicated `"8x16"` geometry literal (repro-lint
R3 bug class): every algorithm driver defaults to the single
``DEFAULT_GEOMETRY`` constant instead of its own copy of the string."""

import inspect

from repro.graphs import (
    DEFAULT_GEOMETRY,
    betweenness_centrality,
    bfs,
    bfs_multi,
    collaborative_filtering,
    connected_components,
    pagerank,
    sssp,
    sssp_multi,
)
from repro.graphs.common import ensure_runtime

DRIVERS = [
    betweenness_centrality,
    bfs,
    bfs_multi,
    collaborative_filtering,
    connected_components,
    pagerank,
    sssp,
    sssp_multi,
]


def test_default_geometry_is_the_paper_array():
    assert DEFAULT_GEOMETRY == "8x16"


def test_every_driver_shares_the_constant():
    for driver in DRIVERS:
        default = inspect.signature(driver).parameters["geometry"].default
        assert default is DEFAULT_GEOMETRY, driver.__name__


def test_ensure_runtime_shares_the_constant():
    default = inspect.signature(ensure_runtime).parameters["geometry"].default
    assert default is DEFAULT_GEOMETRY
