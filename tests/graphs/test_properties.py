"""Property-based graph-algorithm tests on random graphs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import LigraEngine
from repro.graphs import Graph, bfs, pagerank, sssp
from repro.workloads import uniform_random


@st.composite
def random_graph(draw):
    n = draw(st.integers(4, 60))
    e = draw(st.integers(0, 4 * n))
    seed = draw(st.integers(0, 10_000))
    coo = uniform_random(n, nnz=min(e, n * n), seed=seed, remove_self_loops=True)
    return Graph(coo, name="prop")


class TestBFSProperties:
    @given(random_graph(), st.integers(0, 59))
    @settings(max_examples=40, deadline=None)
    def test_levels_are_consistent(self, graph, source):
        source = source % graph.n_vertices
        levels = bfs(graph, source, geometry="1x2").values
        # source at 0; every edge (u, v) satisfies level(v) <= level(u)+1
        assert levels[source] == 0
        adj = graph.adjacency
        u, v = adj.rows, adj.cols
        finite = np.isfinite(levels[u])
        assert np.all(levels[v][finite] <= levels[u][finite] + 1)
        # reached vertices (except source) have a parent one level up
        for w in np.nonzero(np.isfinite(levels))[0]:
            if w == source:
                continue
            preds = u[v == w]
            assert np.any(levels[preds] == levels[w] - 1)

    @given(random_graph(), st.integers(0, 59))
    @settings(max_examples=30, deadline=None)
    def test_bfs_lower_bounds_sssp_hops(self, graph, source):
        """With unit weights, SSSP distances equal BFS levels."""
        source = source % graph.n_vertices
        unit = Graph(
            type(graph.adjacency)(
                graph.adjacency.n_rows,
                graph.adjacency.n_cols,
                graph.adjacency.rows,
                graph.adjacency.cols,
                np.ones(graph.adjacency.nnz),
                sort=False,
                check=False,
            ),
            name="unit",
        )
        l = bfs(unit, source, geometry="1x2").values
        d = sssp(unit, source, geometry="1x2").values
        assert np.allclose(np.nan_to_num(l, posinf=-1), np.nan_to_num(d, posinf=-1))


class TestSSSPProperties:
    @given(random_graph(), st.integers(0, 59))
    @settings(max_examples=30, deadline=None)
    def test_triangle_inequality_on_edges(self, graph, source):
        source = source % graph.n_vertices
        dist = sssp(graph, source, geometry="1x2").values
        adj = graph.adjacency
        u, v, w = adj.rows, adj.cols, adj.vals
        finite = np.isfinite(dist[u])
        assert np.all(dist[v][finite] <= dist[u][finite] + w[finite] + 1e-9)

    @given(random_graph(), st.integers(0, 59))
    @settings(max_examples=20, deadline=None)
    def test_matches_ligra(self, graph, source):
        source = source % graph.n_vertices
        ours = sssp(graph, source, geometry="1x2").values
        theirs = LigraEngine(graph).sssp(source).values
        assert np.allclose(
            np.nan_to_num(ours, posinf=-1), np.nan_to_num(theirs, posinf=-1)
        )


class TestPageRankProperties:
    @given(random_graph())
    @settings(max_examples=25, deadline=None)
    def test_mass_conserved_up_to_dangling(self, graph):
        ranks = pagerank(graph, geometry="1x2", max_iters=15).values
        assert np.all(ranks > 0)
        assert ranks.sum() <= 1.0 + 1e-9
        if np.all(graph.out_degrees() > 0):
            # no dangling vertices: mass is conserved exactly
            assert ranks.sum() == pytest.approx(1.0, abs=1e-6)
