"""Graph container tests."""

import numpy as np
import pytest

from repro.errors import AlgorithmError
from repro.formats import COOMatrix
from repro.graphs import Graph


class TestConstruction:
    def test_rejects_non_square(self):
        with pytest.raises(AlgorithmError):
            Graph(COOMatrix(2, 3, [0], [1], [1.0]))

    def test_from_edges(self):
        g = Graph.from_edges(4, [0, 1], [1, 2], [2.0, 3.0])
        assert g.n_vertices == 4
        assert g.n_edges == 2
        dense = g.adjacency.to_dense()
        assert dense[0, 1] == 2.0 and dense[1, 2] == 3.0

    def test_from_edges_default_weights(self):
        g = Graph.from_edges(3, [0], [1])
        assert g.adjacency.vals[0] == 1.0

    def test_undirected_mirrors(self):
        g = Graph.from_edges(3, [0], [1], [5.0], undirected=True)
        dense = g.adjacency.to_dense()
        assert dense[0, 1] == dense[1, 0] == 5.0

    def test_duplicate_edges_sum(self):
        g = Graph.from_edges(2, [0, 0], [1, 1], [1.0, 2.0])
        assert g.n_edges == 1
        assert g.adjacency.to_dense()[0, 1] == 3.0

    def test_from_networkx_directed(self):
        nx = pytest.importorskip("networkx")
        d = nx.DiGraph()
        d.add_edge(0, 1, weight=2.0)
        d.add_edge(1, 2)
        g = Graph.from_networkx(d)
        assert g.n_edges == 2
        assert g.adjacency.to_dense()[0, 1] == 2.0

    def test_from_networkx_undirected(self):
        nx = pytest.importorskip("networkx")
        u = nx.Graph()
        u.add_edge(0, 1)
        g = Graph.from_networkx(u)
        assert g.n_edges == 2  # mirrored


class TestStructure:
    def test_operand_is_transposed(self):
        g = Graph.from_edges(3, [0], [2], [7.0])
        # operand rows are destinations: SpMV(G.T, f)
        assert g.operand.coo.to_dense()[2, 0] == 7.0

    def test_degrees(self):
        g = Graph.from_edges(3, [0, 0, 1], [1, 2, 2])
        assert list(g.out_degrees()) == [2, 1, 0]
        assert list(g.in_degrees()) == [0, 1, 2]

    def test_degrees_cached(self, small_graph):
        assert small_graph.out_degrees() is small_graph.out_degrees()

    def test_check_source(self, small_graph):
        assert small_graph.check_source(0) == 0
        with pytest.raises(AlgorithmError):
            small_graph.check_source(small_graph.n_vertices)

    def test_density(self):
        g = Graph.from_edges(10, [0], [1])
        assert g.density == pytest.approx(0.01)
