"""End-to-end algorithm tests against networkx / dense references."""

import numpy as np
import pytest

networkx = pytest.importorskip("networkx")

from repro.core import CoSparseRuntime
from repro.errors import AlgorithmError
from repro.graphs import (
    Graph,
    bfs,
    cf_loss,
    collaborative_filtering,
    pagerank,
    sssp,
)


@pytest.fixture(scope="module")
def nx_graph():
    rng = np.random.default_rng(9)
    g = networkx.gnp_random_graph(250, 0.03, seed=4, directed=True)
    for u, v in g.edges():
        g[u][v]["weight"] = float(rng.integers(1, 10))
    return g


@pytest.fixture(scope="module")
def graph(nx_graph):
    return Graph.from_networkx(nx_graph, name="algo-test")


class TestBFS:
    def test_levels_match_networkx(self, graph, nx_graph):
        run = bfs(graph, 0, geometry="2x4")
        ref = networkx.single_source_shortest_path_length(nx_graph, 0)
        mine = {v: int(l) for v, l in enumerate(run.values) if np.isfinite(l)}
        assert mine == ref

    def test_unreachable_stay_inf(self):
        g = Graph.from_edges(4, [0], [1])
        run = bfs(g, 0, geometry="1x2")
        assert np.isinf(run.values[2]) and np.isinf(run.values[3])

    def test_frontier_trace_recorded(self, graph):
        run = bfs(graph, 0, geometry="2x4")
        assert len(run.frontier_trace.sizes) == run.iterations
        assert run.frontier_trace.sizes[0] == 1

    def test_max_iters_cap(self, graph):
        run = bfs(graph, 0, geometry="2x4", max_iters=1)
        assert run.iterations == 1
        assert not run.converged

    def test_rejects_bad_source(self, graph):
        with pytest.raises(AlgorithmError):
            bfs(graph, -1, geometry="2x4")

    def test_reconfigures_over_the_run(self, graph):
        """The frontier swells then shrinks; the tree must switch."""
        run = bfs(graph, 0, geometry="2x4")
        labels = set(run.log.config_sequence())
        assert any(l.startswith("OP/") for l in labels)
        assert any(l.startswith("IP/") for l in labels)


class TestSSSP:
    def test_distances_match_dijkstra(self, graph, nx_graph):
        run = sssp(graph, 0, geometry="2x4")
        ref = networkx.single_source_dijkstra_path_length(nx_graph, 0)
        mine = {v: d for v, d in enumerate(run.values) if np.isfinite(d)}
        assert set(mine) == set(ref)
        for v in ref:
            assert mine[v] == pytest.approx(ref[v])

    def test_rejects_negative_weights(self):
        g = Graph.from_edges(2, [0], [1], [-1.0])
        with pytest.raises(AlgorithmError):
            sssp(g, 0, geometry="1x2")

    def test_source_distance_zero(self, graph):
        run = sssp(graph, 5, geometry="2x4")
        assert run.values[5] == 0.0

    def test_runs_on_shared_runtime(self, graph):
        rt = CoSparseRuntime(graph.operand, "2x4")
        run1 = sssp(graph, 0, runtime=rt)
        run2 = sssp(graph, 1, runtime=rt)  # reset_log between runs
        assert run2.iterations == len(rt.log)


class TestPageRank:
    def test_matches_dense_power_iteration(self, graph):
        run = pagerank(graph, geometry="2x4", max_iters=60, tol=1e-12)
        n = graph.n_vertices
        A = graph.adjacency.to_dense() != 0
        deg = graph.out_degrees().astype(float)
        safe = np.where(deg > 0, deg, 1.0)
        r = np.full(n, 1.0 / n)
        for _ in range(60):
            r = 0.15 / n + 0.85 * (A.T @ (r / safe))
        assert np.allclose(run.values, r, atol=1e-8)

    def test_converges(self, graph):
        run = pagerank(graph, geometry="2x4", max_iters=200, tol=1e-9)
        assert run.converged

    def test_always_dense_ip(self, graph):
        run = pagerank(graph, geometry="2x4", max_iters=5, tol=0.0)
        assert all(r.algorithm == "ip" for r in run.log)

    def test_ranks_bounded(self, graph):
        run = pagerank(graph, geometry="2x4", max_iters=30)
        assert np.all(run.values > 0)
        assert run.values.sum() <= 1.0 + 1e-9


class TestCF:
    @pytest.fixture(scope="class")
    def ratings(self):
        rng = np.random.default_rng(21)
        users, items = 40, 25
        u = rng.integers(0, users, 300)
        i = rng.integers(0, items, 300) + users
        r = rng.uniform(1, 5, 300)
        return Graph.from_edges(users + items, u, i, r, undirected=True)

    def test_loss_decreases(self, ratings):
        run = collaborative_filtering(ratings, geometry="2x4", iterations=6, k=4)
        rng = np.random.default_rng(11)
        initial = rng.normal(scale=0.1, size=(ratings.n_vertices, 4))
        assert cf_loss(ratings, run.values) < cf_loss(ratings, initial)

    def test_factor_shape(self, ratings):
        run = collaborative_filtering(ratings, geometry="2x4", iterations=2, k=5)
        assert run.values.shape == (ratings.n_vertices, 5)

    def test_rejects_zero_iterations(self, ratings):
        with pytest.raises(AlgorithmError):
            collaborative_filtering(ratings, geometry="2x4", iterations=0)

    def test_always_dense_ip(self, ratings):
        run = collaborative_filtering(ratings, geometry="2x4", iterations=2)
        assert all(r.algorithm == "ip" for r in run.log)


class TestAlgorithmRun:
    def test_summary_and_costs(self, graph):
        run = bfs(graph, 0, geometry="2x4")
        assert run.total_cycles > 0
        assert run.total_energy_j > 0
        assert run.time_s == pytest.approx(run.total_cycles * 1e-9)
        assert "bfs" in run.summary()
