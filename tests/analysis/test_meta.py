"""Meta-test: repro-lint must run clean on its own package at HEAD.

This is the in-suite twin of the `make lint` CI gate: every invariant
rule over every module under ``src/repro``, against the checked-in
(empty-for-R1) baseline semantics — i.e. with no baseline at all.
"""

import os

import repro
from repro.analysis import lint_paths


def _package_dir():
    return os.path.dirname(os.path.abspath(repro.__file__))


def test_lint_clean_on_head():
    result = lint_paths([_package_dir()], use_model_cache=False)
    assert result.parse_errors == []
    assert result.rules_run == [
        "R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8", "R9", "R10",
    ]
    assert result.files_checked > 80  # the whole package, not a subtree
    details = "\n".join(f.format_human() for f in result.active)
    assert result.active == [], f"repro-lint regressions:\n{details}"


def test_no_bare_asserts_even_suppressed():
    # The R1 baseline is intentionally empty and the rule tolerates no
    # inline suppression debt either: guard paths raise typed errors.
    result = lint_paths([_package_dir()], rules=["R1"])
    assert result.findings == []
