"""Runtime sanitizer (REPRO_SANITIZE=1): unit checks and end-to-end
seeded-violation coverage through the real runtime paths."""

from dataclasses import replace
from types import SimpleNamespace

import numpy as np
import pytest

from repro.analysis import sanitize
from repro.core import CoSparseRuntime, SpMVOperand
from repro.errors import SimulationError
from repro.spmv import bfs_semiring, spmv_semiring
from repro.workloads import random_frontier


def _counters(**over):
    base = dict(
        pe_ops=10.0, lcp_ops=1.0, spm_accesses=5.0,
        l1_accesses=8.0, l1_hits=6.0, l2_accesses=2.0, l2_hits=1.0,
        dram_words=3.0, xbar_hops=0.0,
    )
    base.update(over)
    return SimpleNamespace(**base)


def _report(**over):
    base = dict(
        cycles=100.0, bandwidth_floor_cycles=0.0, reconfig_cycles=0.0,
        energy_j=1e-6, counters=_counters(),
    )
    base.update(over)
    return SimpleNamespace(**base)


class TestEnablement:
    def test_env_var_controls_mode(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert not sanitize.enabled()
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert sanitize.enabled()
        for falsey in ("0", "false", "off", "no", ""):
            monkeypatch.setenv("REPRO_SANITIZE", falsey)
            assert not sanitize.enabled()

    def test_override_beats_env_and_restores(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        with sanitize.override(False):
            assert not sanitize.enabled()
            with sanitize.override(True):
                assert sanitize.enabled()
            assert not sanitize.enabled()
        assert sanitize.enabled()

    def test_active_swaps_implementations(self):
        with sanitize.override(True):
            assert type(sanitize.active()) is sanitize.Sanitizer
        with sanitize.override(False):
            live = sanitize.active()
            assert type(live) is not sanitize.Sanitizer
            # the null twin swallows violations outright
            live.check_histogram("x", np.array([1]), 99)
            live.check_report("x", _report(cycles=-1.0))


class TestChecks:
    def test_histogram_conservation(self):
        san = sanitize.Sanitizer()
        san.check_histogram("ok", np.array([3, 4]), 7)
        with pytest.raises(SimulationError, match=r"\[sanitizer\] h:.*lost"):
            san.check_histogram("h", np.array([3, 4]), 8)
        with pytest.raises(SimulationError, match="negative"):
            san.check_histogram("h", np.array([9, -2]), 7)

    def test_report_counters(self):
        san = sanitize.Sanitizer()
        san.check_report("ok", _report())
        with pytest.raises(SimulationError, match="cycles"):
            san.check_report("r", _report(cycles=-5.0))
        with pytest.raises(SimulationError, match="cycles"):
            san.check_report("r", _report(cycles=float("nan")))
        with pytest.raises(SimulationError, match="energy_j"):
            san.check_report("r", _report(energy_j=-1e-9))
        with pytest.raises(SimulationError, match="l1_hits"):
            san.check_report("r", _report(counters=_counters(l1_hits=9.0)))
        with pytest.raises(SimulationError, match="l2_hits"):
            san.check_report("r", _report(counters=_counters(l2_hits=3.0)))
        # energy may legitimately be unpriced
        san.check_report("ok", _report(energy_j=None))

    def test_conversion_accounting(self):
        san = sanitize.Sanitizer()
        san.check_conversion("ok", SimpleNamespace(reads=4, writes=2), 12.0)
        with pytest.raises(SimulationError, match="conversion reads"):
            san.check_conversion("c", SimpleNamespace(reads=-1, writes=0), 0.0)
        with pytest.raises(SimulationError, match="conversion cycles"):
            san.check_conversion("c", SimpleNamespace(reads=0, writes=0), -3.0)

    def test_batch_record_provenance(self):
        san = sanitize.Sanitizer()
        recs = [
            SimpleNamespace(batch_id=7, batch_column=c, iteration=i)
            for i, c in enumerate((1, 0, 2))
        ]
        san.check_batch_records("ok", recs, batch_id=7, n_columns=3)
        with pytest.raises(SimulationError, match="logged 2 records"):
            san.check_batch_records("b", recs[:2], batch_id=7, n_columns=3)
        dup = [recs[0], replace_col(recs[1], 1), recs[2]]
        with pytest.raises(SimulationError, match="exactly once"):
            san.check_batch_records("b", dup, batch_id=7, n_columns=3)
        shuffled = [recs[2], recs[0], recs[1]]
        with pytest.raises(SimulationError, match="iteration order"):
            san.check_batch_records("b", shuffled, batch_id=7, n_columns=3)
        # records of other batches are invisible to the check
        other = SimpleNamespace(batch_id=8, batch_column=9, iteration=0)
        san.check_batch_records("ok", recs + [other], batch_id=7, n_columns=3)

    def test_batch_scope_checks_on_exit(self):
        log = SimpleNamespace(records=[])
        with sanitize.override(True):
            with pytest.raises(SimulationError, match="logged 0 records"):
                with sanitize.batch_scope(log, batch_id=0, n_columns=2):
                    pass
        with sanitize.override(False):
            with sanitize.batch_scope(log, batch_id=0, n_columns=2):
                pass  # null twin: no raise


def replace_col(rec, column):
    return SimpleNamespace(
        batch_id=rec.batch_id, batch_column=column, iteration=rec.iteration
    )


# ----------------------------------------------------------------------
# End-to-end: seeded violations must be caught by the instrumented
# runtime paths, and clean runs must pass with the sanitizer live.
# ----------------------------------------------------------------------
@pytest.fixture
def runtime(medium_coo):
    return CoSparseRuntime(SpMVOperand(medium_coo), "2x8")


class TestEndToEnd:
    def test_clean_spmv_passes_with_sanitizer_on(self, runtime, medium_coo):
        f = random_frontier(medium_coo.n_cols, 0.01, seed=3)
        with sanitize.override(True):
            res = runtime.spmv(f, bfs_semiring())
        assert res is not None
        assert len(runtime.log.records) == 1

    def test_clean_batch_passes_with_sanitizer_on(self, runtime, medium_coo):
        cols = [
            random_frontier(medium_coo.n_cols, 0.002, seed=1),
            random_frontier(medium_coo.n_cols, 0.2, seed=2),
        ]
        with sanitize.override(True):
            results = runtime.spmv_batch(cols, spmv_semiring())
        assert len(results) == 2

    def test_seeded_report_violation_is_caught(
        self, runtime, medium_coo, monkeypatch
    ):
        real_run = runtime.system.run

        def corrupt_run(profile, **kw):
            return replace(real_run(profile, **kw), cycles=-5.0)

        monkeypatch.setattr(runtime.system, "run", corrupt_run)
        f = random_frontier(medium_coo.n_cols, 0.01, seed=3)
        with sanitize.override(True):
            with pytest.raises(SimulationError, match=r"\[sanitizer\] spmv"):
                runtime.spmv(f, bfs_semiring())
        # sanitizer off: the corrupted report sails straight through,
        # which is exactly why the mode exists
        with sanitize.override(False):
            runtime.spmv(f, bfs_semiring())

    def test_seeded_batch_provenance_violation_is_caught(
        self, runtime, medium_coo, monkeypatch
    ):
        cols = [
            random_frontier(medium_coo.n_cols, 0.002, seed=1),
            random_frontier(medium_coo.n_cols, 0.003, seed=2),
        ]
        real_append = runtime.log.append
        dropped = []

        def dropping_append(record):
            if not dropped:
                dropped.append(record)  # lose the first column's record
                return
            real_append(record)

        monkeypatch.setattr(runtime.log, "append", dropping_append)
        with sanitize.override(True):
            with pytest.raises(
                SimulationError, match=r"\[sanitizer\] spmv_batch"
            ):
                runtime.spmv_batch(cols, spmv_semiring())
        assert len(dropped) == 1
