"""repro-lint CLI: exit codes, JSON schema snapshot, baseline workflow."""

import json
import os

import pytest

from repro.analysis import JSON_SCHEMA_VERSION, Baseline, BaselineError
from repro.analysis.cli import main

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")
R1 = os.path.join(FIXTURES, "r1_cases.py")

#: The machine-readable report layout is a compatibility surface: anyone
#: piping `repro-lint --format json` into CI tooling depends on exactly
#: these keys.  Bump JSON_SCHEMA_VERSION when changing either snapshot.
REPORT_KEYS = [
    "counts",
    "files_checked",
    "findings",
    "ok",
    "parse_errors",
    "rules_run",
    "schema_version",
    "stats",
    "tool",
]

ALL_RULE_IDS = ["R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8", "R9", "R10"]
FINDING_KEYS = [
    "baselined",
    "col",
    "line",
    "message",
    "path",
    "rule",
    "rule_name",
    "snippet",
    "suppressed",
]


@pytest.fixture(autouse=True)
def _isolate_cwd(tmp_path, monkeypatch):
    """Keep the repo's checked-in baseline out of the default probe."""
    monkeypatch.chdir(tmp_path)


class TestExitCodes:
    def test_findings_exit_1(self, capsys):
        assert main([R1]) == 1
        out = capsys.readouterr().out
        assert "R1 (bare-assert)" in out
        assert "finding(s)" in out

    def test_clean_exit_0(self, tmp_path, capsys):
        src = tmp_path / "clean.py"
        src.write_text("WIDTH = 4\n")
        assert main([str(src)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_missing_path_exit_2(self, capsys):
        assert main(["no/such/dir"]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_unknown_rule_exit_2(self, capsys):
        assert main([R1, "--rules", "R1,R99"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_baseline_exit_2(self, capsys):
        assert main([R1, "--baseline", "nope.json"]) == 2
        assert "baseline file not found" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ALL_RULE_IDS:
            assert rule_id in out


class TestJsonSchema:
    def test_report_schema_snapshot(self, capsys):
        assert main([R1, "--format", "json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert sorted(report) == REPORT_KEYS
        assert report["schema_version"] == JSON_SCHEMA_VERSION == 2
        assert report["tool"] == "repro-lint"
        assert report["rules_run"] == ALL_RULE_IDS
        assert report["files_checked"] == 1
        assert report["ok"] is False
        assert report["counts"] == {"R1": 1}
        for finding in report["findings"]:
            assert sorted(finding) == FINDING_KEYS
        active = [f for f in report["findings"] if not f["suppressed"]]
        assert active[0]["rule"] == "R1"
        assert active[0]["path"] == "r1_cases.py"
        assert active[0]["snippet"] == 'assert x > 0, "boom"'
        # v2 adds the stats block on top of the v1 keys.
        stats = report["stats"]
        assert stats["findings_per_rule"]["R1"] == 2  # incl. suppressed
        assert stats["files"] == 1
        assert stats["wall_s"] >= 0

    def test_rule_selection(self, capsys):
        assert main([R1, "--rules", "R3", "--format", "json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["rules_run"] == ["R3"]
        assert report["findings"] == []

    def test_single_rule_flag_and_json_alias(self, capsys):
        assert main([R1, "--rule", "R6", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["rules_run"] == ["R6"]
        assert report["findings"] == []

    def test_rule_flag_combines_with_rules(self, capsys):
        assert main([R1, "--rules", "R3", "--rule", "R1", "--json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["rules_run"] == ["R3", "R1"]
        assert report["counts"] == {"R1": 1}

    def test_stats_flag_prints_summary(self, capsys):
        assert main([R1, "--stats"]) == 1
        out = capsys.readouterr().out
        assert "repro-lint stats:" in out
        assert "wall:" in out
        for rule_id in ALL_RULE_IDS:
            assert rule_id in out

    def test_no_model_cache_flag(self, capsys):
        assert main([R1, "--json"]) == 1  # populates the cache
        capsys.readouterr()
        assert main([R1, "--json", "--no-model-cache"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["stats"]["cache_hits"] == 0
        assert report["stats"]["parsed"] == 1


class TestBaselineWorkflow:
    def test_update_then_clean(self, capsys):
        assert main([R1, "--baseline", "b.json", "--update-baseline"]) == 0
        assert os.path.isfile("b.json")
        assert main([R1, "--baseline", "b.json"]) == 0
        out = capsys.readouterr().out
        assert "baselined" in out
        assert "clean" in out

    def test_baseline_is_a_ratchet(self, tmp_path, capsys):
        # Baselined debt stays quiet; *new* findings still fail the run.
        assert main([R1, "--baseline", "b.json", "--update-baseline"]) == 0
        src = tmp_path / "new_debt.py"
        src.write_text("assert False, 'fresh'\n")
        assert main([R1, str(src), "--baseline", "b.json"]) == 1
        out = capsys.readouterr().out
        assert "new_debt.py" in out

    def test_default_baseline_probed_in_cwd(self, capsys):
        assert main([R1, "--update-baseline"]) == 0
        assert os.path.isfile("repro-lint.baseline.json")
        assert main([R1]) == 0

    def test_corrupt_baseline_exit_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{]")
        assert main([R1, "--baseline", str(bad)]) == 2

    def test_baseline_version_checked(self, tmp_path):
        versioned = tmp_path / "v9.json"
        versioned.write_text(json.dumps({"version": 9, "entries": []}))
        with pytest.raises(BaselineError, match="version"):
            Baseline.load(str(versioned))

    def test_v1_baseline_still_loads(self, tmp_path):
        # Pre-v2 checkouts carry version-1 baselines; they must keep
        # suppressing their recorded debt unchanged.
        legacy = tmp_path / "v1.json"
        legacy.write_text(
            json.dumps(
                {
                    "version": 1,
                    "entries": [
                        {
                            "rule": "R1",
                            "path": "r1_cases.py",
                            "snippet": 'assert x > 0, "boom"',
                            "count": 1,
                        }
                    ],
                }
            )
        )
        loaded = Baseline.load(str(legacy))
        assert len(loaded) == 1
        from repro.analysis import lint_paths

        result = lint_paths([R1], rules=["R1"], baseline=loaded)
        assert result.active == []
        baselined = [f for f in result.findings if f.baselined]
        assert len(baselined) == 1

    def test_v2_baseline_reason_roundtrip(self, tmp_path):
        b = Baseline()
        key = ("R8", "repro/x.py", "state.append(1)")
        b.entries[key] = 1
        b.reasons[key] = "documented false positive: write is test-only"
        path = tmp_path / "v2.json"
        b.save(str(path))
        data = json.loads(path.read_text())
        assert data["version"] == 2
        assert data["entries"][0]["reason"].startswith("documented")
        reloaded = Baseline.load(str(path))
        assert reloaded.reasons[key] == b.reasons[key]

    def test_baseline_roundtrip_multiset(self, tmp_path):
        from repro.analysis import lint_paths

        result = lint_paths([R1], rules=["R1"])
        path = tmp_path / "round.json"
        Baseline.from_findings(result.findings).save(str(path))
        reloaded = Baseline.load(str(path))
        unsuppressed = [f for f in result.findings if not f.suppressed]
        assert len(reloaded) == len(unsuppressed) == 1
        again = lint_paths([R1], rules=["R1"], baseline=reloaded)
        assert again.active == []


class TestVerboseOutput:
    def test_suppressed_rows_only_with_verbose(self, capsys):
        main([R1])
        quiet = capsys.readouterr().out
        assert "[suppressed]" not in quiet
        main([R1, "--verbose"])
        loud = capsys.readouterr().out
        assert "[suppressed]" in loud
