"""R10 fixture: wire-payload dataclasses (``*Payload``) are schema'd
like obs events — constructions and ``_EVENT_KEYS`` must agree with the
kind-tagged dataclass fields."""

from dataclasses import dataclass


@dataclass
class StatusPayload:
    kind = "status"

    ok: bool
    detail: str = ""


@dataclass
class DepthPayload:
    kind = "depth"

    queue: int
    width: int


_EVENT_KEYS = {
    "status": ("ok",),  # negative: field exists
    "depth": ("queue", "lanes"),  # positive: `lanes` is not a field
}


def build_good():
    return StatusPayload(ok=True)


def build_unknown_kwarg():
    return StatusPayload(ok=True, extra=1)  # positive: no `extra` field


def build_missing_required():
    return DepthPayload(queue=3)  # positive: required `width` omitted


def build_star(**kw):
    return DepthPayload(**kw)  # negative: star args are not audited
