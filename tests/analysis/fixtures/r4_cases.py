"""R4 fixture: nondeterminism (RNG + wall clock)."""

import random
import time

import numpy as np


def positive_legacy_rng():
    return np.random.rand(4)


def positive_unseeded_generator():
    return np.random.default_rng()


def positive_stdlib_rng():
    return random.random()


def positive_wallclock():
    return time.perf_counter()


def negative_seeded_generator():
    return np.random.default_rng(7)


def suppressed():
    return time.time()  # repro-lint: ignore[R4]
