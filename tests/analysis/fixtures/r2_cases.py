"""R2 fixture: unit-mixing arithmetic and comparisons."""


def positive_add(busy_cycles, leak_j):
    return busy_cycles + leak_j


def positive_compare(total_cycles, budget_s):
    return total_cycles > budget_s


def negative_same_unit(compute_cycles, stall_cycles):
    return compute_cycles + stall_cycles


def negative_conversion(total_cycles, clock_hz):
    # Multiplication/division is how units convert — never flagged.
    return total_cycles / clock_hz


def negative_unitless(alpha, beta):
    return alpha + beta


def suppressed(busy_cycles, leak_j):
    return busy_cycles + leak_j  # repro-lint: ignore[R2]
