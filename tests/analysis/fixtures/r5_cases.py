"""R5 fixture: registered pricing kernels mutating their arguments."""

import numpy as np


def inner_product(matrix, vector, partition):
    vector[0] = 1.0  # subscript store into a parameter
    buf = np.asarray(vector)
    buf += 1.0  # augmented assignment through an alias
    out = np.zeros(4)
    out[0] = 2.0  # fresh buffer: fine
    return out


def outer_product(matrix, frontier):
    frontier.sort()  # in-place method on a parameter
    local = frontier.copy()
    local.sort()  # copy breaks the alias: fine
    return local


def helper(vector):
    vector[0] = 1.0  # not a registered kernel: fine
    return vector


def inner_product_batch(matrix, vectors):
    vectors[0] = 1.0  # repro-lint: ignore[R5]
    return vectors
