# repro-lint: skip-file
"""Whole-file suppression fixture: nothing below may be reported."""

import time


def anything(x):
    assert x
    return time.time() * 1e9
