"""R8 fixture package: PricingTask functions across three modules."""
