"""Unseeded randomness a task function must not reach."""

import numpy as np


def draw():
    rng = np.random.default_rng()
    return rng.random()


def draw_seeded(seed):
    rng = np.random.default_rng(seed)
    return rng.random()
