"""Helpers the task functions call into (one pure, two impure)."""

_CALLS = []


def scale_in_place(buf, factor):
    buf *= factor  # mutates the caller's array through the parameter
    return buf


def count_call(label):
    _CALLS.append(label)  # module-global accumulator
    return len(_CALLS)


def scale_copy(buf, factor):
    out = buf.copy()
    out *= factor  # fresh buffer: the input stays untouched
    return out
