"""Task functions registered through PricingTask constructions."""

from .helpers import count_call, scale_copy, scale_in_place
from .rng import draw, draw_seeded

PRICE_FN = "r8pkg.tasks:positive_global"


class PricingTask:
    """Stand-in with the real constructor shape (fn, payload, ...)."""

    def __init__(self, fn, payload=None, arrays=None, cacheable=True):
        self.fn = fn
        self.payload = payload
        self.arrays = arrays
        self.cacheable = cacheable


def build_tasks(payload):
    return [
        PricingTask("r8pkg.tasks:positive_mutates", payload),
        PricingTask("r8pkg.tasks:positive_direct", payload),
        PricingTask(fn=PRICE_FN),
        PricingTask("r8pkg.tasks:positive_rng"),
        PricingTask("r8pkg.tasks:negative_pure", payload),
    ]


def positive_mutates(buf, factor):
    return scale_in_place(buf, factor).sum()  # callee mutates `buf`


def positive_direct(buf):
    buf.fill(0.0)
    return buf.sum()


def positive_global(payload):
    return count_call(payload)  # transitively appends to a module global


def positive_rng():
    return draw()  # transitively reads unseeded RNG


def negative_pure(buf, factor):
    out = scale_copy(buf, factor)
    return out.sum() + draw_seeded(len(out))
