"""R1 fixture: bare asserts vs typed guard errors."""


def positive(x):
    assert x > 0, "boom"


def negative(x):
    if x <= 0:
        raise ValueError("boom")
    return x


def suppressed(x):
    assert x > 0  # repro-lint: ignore[R1]
