"""R9 fixture: keyed payload dataclasses vs their key functions."""

import hashlib
import json
from dataclasses import dataclass, field


@dataclass
class PricingTask:
    fn: str
    payload: dict = field(default_factory=dict)
    arrays: dict = field(default_factory=dict)
    precision: str = "fp64"  # positive: never reaches task_key
    note: str = ""  # repro-lint: ignore[R9]
    cacheable: bool = True  # negative: registered control field


def task_key(task):
    material = {
        "fn": task.fn,
        "payload": task.payload,
        "arrays": sorted(task.arrays),
    }
    blob = json.dumps(material, sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class TuningPlan:
    # positive: no plan_key function exists anywhere in this model
    geometry: dict = field(default_factory=dict)
    ordering: str = "identity"  # exempt result field
    storage: str = "csr"  # exempt result field
