"""Leaf module: no project callees."""


def leaf(x):
    return x * 2
