"""Synthetic 3-module package for the call-graph unit test."""

from .beta import middle
