"""Entry module: calls across the package by several import styles."""

from cgpkg import middle as reexported_middle
from cgpkg.beta import middle

from .gamma import leaf


def entry(x):
    a = middle(x)
    b = reexported_middle(a)
    c = leaf(b)
    return bystander(c)


def bystander(x):
    def inner(y):
        return y + 1

    return inner(x)
