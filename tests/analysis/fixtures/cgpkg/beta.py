"""Middle module: forwards into gamma; `lonely` is never called."""

from .gamma import leaf


def middle(x):
    return leaf(x)


def lonely():
    return None
