"""R7 fixture: SharedMemory handles on happy and exception paths."""

import numpy as np
from multiprocessing import shared_memory


def positive_leak(ref, registry):
    seg = shared_memory.SharedMemory(name=ref.segment)
    view = np.ndarray(ref.shape, np.dtype(ref.dtype), buffer=seg.buf)
    registry[ref.segment] = (seg, view)  # too late: the line above can raise
    return view


def positive_unreleased(nbytes):
    seg = shared_memory.SharedMemory(create=True, size=nbytes)
    return None  # handle dropped without close()/unlink() or an owner


def negative_owner_first(ref, registry):
    seg = shared_memory.SharedMemory(name=ref.segment)
    registry[ref.segment] = seg  # ownership transferred before any risk
    view = np.ndarray(ref.shape, np.dtype(ref.dtype), buffer=seg.buf)
    return view


def negative_guarded(ref):
    seg = shared_memory.SharedMemory(name=ref.segment)
    try:
        view = np.ndarray(ref.shape, np.dtype(ref.dtype), buffer=seg.buf)
    except BaseException:
        seg.close()
        raise
    return seg, view  # caller owns the handle


def negative_closed(nbytes):
    seg = shared_memory.SharedMemory(create=True, size=nbytes)
    seg.close()
    seg.unlink()


def suppressed(nbytes):
    # repro-lint: ignore[R7]
    seg = shared_memory.SharedMemory(create=True, size=nbytes)
    return None
