"""R3 fixture: magic hardware constants."""

CLOCK_HZ = 1e9  # module-level UPPER_CASE names a constant: allowed


def positive_clock(freq_scale):
    return freq_scale * 1e9


def positive_period(cycles):
    return cycles * 1e-9


def negative_from_params(params, cycles):
    return cycles / params.clock_hz


def negative_other_literal():
    return 42 * 1024


def suppressed():
    return 4096  # repro-lint: ignore[R3]
