"""R10 fixture: event constructions, _EVENT_KEYS and exporter reads."""

from dataclasses import dataclass
from typing import Optional


@dataclass
class PingEvent:
    kind = "ping"

    node: int
    latency: Optional[float] = None


@dataclass
class DropEvent:
    kind = "drop"

    node: int
    reason: str


_EVENT_KEYS = {
    "ping": ("node",),  # negative: field exists
    "drop": ("node", "why"),  # positive: `why` is not a DropEvent field
    "lost": ("node",),  # positive: no event dataclass declares `lost`
}


def emit_good():
    return PingEvent(node=1)


def emit_positional():
    return DropEvent(3, "timeout")  # negative: both required covered


def emit_unknown_kwarg():
    return PingEvent(node=1, jitter=2)  # positive: no `jitter` field


def emit_missing_required():
    return DropEvent(node=2)  # positive: required `reason` omitted


def emit_star(**kw):
    return DropEvent(**kw)  # negative: star args are not audited


def suppressed():
    return PingEvent(node=1, jitter=2)  # repro-lint: ignore[R10]


def read_fields(log):
    rows = [e for e in log.events_of("ping")]
    nodes = [r["node"] for r in rows]  # negative: real field
    stamps = [r.get("t_s") for r in rows]  # negative: envelope key
    causes = [r["cause"] for r in rows]  # positive: no `cause` field
    return nodes, stamps, causes


def read_unknown_kind(log):
    for rec in log.events_of("missing"):
        yield rec["node"]  # positive: unknown kind
