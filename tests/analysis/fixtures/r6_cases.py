"""R6 fixture: blocking work and unlocked mutation in async bodies."""

import asyncio
import time


def helper_sync():
    deep()


def deep():
    time.sleep(0.5)


async def positive_sleep():
    time.sleep(1)  # blocking call directly on the event loop


async def positive_kernel(matrix, vector, partition):
    return inner_product(matrix, vector, partition)  # CPU-bound kernel


async def positive_transitive():
    helper_sync()  # reaches time.sleep via deep()


async def positive_unlocked_ship(loop, registry, name):
    def work():
        registry.load(name)

    return await loop.run_in_executor(None, work)  # mutation, no lock


async def negative_executor(loop):
    return await loop.run_in_executor(None, helper_sync)  # shipped: fine


async def negative_async_sleep():
    await asyncio.sleep(0.1)  # non-blocking sleep: fine


async def negative_locked_ship(loop, registry, name, lock):
    def work():
        registry.load(name)

    async with lock:
        return await loop.run_in_executor(None, work)  # under the lock


async def negative_await_helper():
    await negative_async_sleep()  # async callee: its own body is checked


async def suppressed():
    time.sleep(1)  # repro-lint: ignore[R6]
