"""Whole-program engine tests: call graph, rules R6-R10 on fixture
packages, the seeded-bug acceptance cases, and the model cache."""

import ast
import json
import os
import time

import repro
from repro.analysis import lint_paths
from repro.analysis.linter import iter_python_files, package_relative
from repro.analysis.program import ModelCache, ProgramModel
from repro.analysis.rules import LOCAL_RULES

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


def _fixture(name):
    return os.path.join(FIXTURES, name)


def _lint(target, rule):
    """One rule over one fixture path, bypassing the on-disk cache."""
    return lint_paths([_fixture(target)], rules=[rule], use_model_cache=False)


def _owners(findings, name):
    """Map findings to the enclosing fixture function (handles async)."""
    with open(_fixture(name), "r", encoding="utf-8") as fh:
        lines = fh.read().splitlines()
    starts = []
    for i, line in enumerate(lines):
        # top-level defs only: nested closures belong to their parent
        if line.startswith("def ") or line.startswith("async def "):
            starts.append((i + 1, line.split("(")[0].split()[-1]))
    out = []
    for f in findings:
        owner = None
        for lineno, fn in starts:
            if lineno <= f.line:
                owner = fn
        out.append(owner)
    return out


def _build_model(path):
    files = [
        (p, package_relative(p)) for p in iter_python_files([_fixture(path)])
    ]
    return ProgramModel.build(files, LOCAL_RULES)


# ----------------------------------------------------------------------
class TestCallGraph:
    def test_resolution_across_three_modules(self):
        model = _build_model("cgpkg")
        graph = model.graph
        alpha = model.summaries["cgpkg/alpha.py"]
        entry = alpha.functions["entry"]
        resolved = {}
        for call in entry.calls:
            target = graph.resolve_call(alpha, entry, call)
            assert target is not None, f"unresolved call {call}"
            resolved[call.name] = (target[0].dotted, target[1].name)
        assert resolved["middle"] == ("cgpkg.beta", "middle")
        # one re-export hop through cgpkg/__init__.py
        assert resolved["reexported_middle"] == ("cgpkg.beta", "middle")
        # relative `from .gamma import leaf`
        assert resolved["leaf"] == ("cgpkg.gamma", "leaf")
        # bare name in the same module
        assert resolved["bystander"] == ("cgpkg.alpha", "bystander")

    def test_nested_def_resolution(self):
        model = _build_model("cgpkg")
        graph = model.graph
        alpha = model.summaries["cgpkg/alpha.py"]
        bystander = alpha.functions["bystander"]
        (call,) = [c for c in bystander.calls if c.name == "inner"]
        target = graph.resolve_call(alpha, bystander, call)
        assert target is not None
        assert target[1].name == "bystander.<locals>.inner"

    def test_uncalled_function_has_no_edges(self):
        model = _build_model("cgpkg")
        graph = model.graph
        targets = set()
        for mod, fn in graph.functions():
            for call in fn.calls:
                hit = graph.resolve_call(mod, fn, call)
                if hit is not None:
                    targets.add((hit[0].dotted, hit[1].name))
        assert ("cgpkg.beta", "middle") in targets
        assert ("cgpkg.gamma", "leaf") in targets
        assert ("cgpkg.beta", "lonely") not in targets


# ----------------------------------------------------------------------
class TestR6AsyncDiscipline:
    def test_positives_and_negatives(self):
        result = _lint("r6_cases.py", "R6")
        owners = _owners(result.active, "r6_cases.py")
        assert sorted(owners) == [
            "positive_kernel",
            "positive_sleep",
            "positive_transitive",
            "positive_unlocked_ship",
        ]

    def test_transitive_witness_chain(self):
        result = _lint("r6_cases.py", "R6")
        (finding,) = [
            f
            for f in result.active
            if _owners([f], "r6_cases.py") == ["positive_transitive"]
        ]
        assert "helper_sync -> deep -> time.sleep" in finding.message

    def test_unlocked_ship_names_the_mutation(self):
        result = _lint("r6_cases.py", "R6")
        (finding,) = [
            f
            for f in result.active
            if _owners([f], "r6_cases.py") == ["positive_unlocked_ship"]
        ]
        assert "registry" in finding.message
        assert "lock" in finding.message

    def test_inline_suppression(self):
        result = _lint("r6_cases.py", "R6")
        sup = [f for f in result.findings if f.suppressed]
        assert _owners(sup, "r6_cases.py") == ["suppressed"]


# ----------------------------------------------------------------------
class TestR7ShmLifecycle:
    def test_positives_and_negatives(self):
        result = _lint("r7_cases.py", "R7")
        owners = _owners(result.active, "r7_cases.py")
        assert sorted(owners) == ["positive_leak", "positive_unreleased"]

    def test_leak_points_at_risky_line(self):
        result = _lint("r7_cases.py", "R7")
        (leak,) = [f for f in result.active if "raises before" in f.message]
        assert _owners([leak], "r7_cases.py") == ["positive_leak"]

    def test_inline_suppression(self):
        result = _lint("r7_cases.py", "R7")
        sup = [f for f in result.findings if f.suppressed]
        assert _owners(sup, "r7_cases.py") == ["suppressed"]


# ----------------------------------------------------------------------
class TestR8TaskPurity:
    def test_cross_module_findings(self):
        result = _lint("r8pkg", "R8")
        by_message = sorted(f.message for f in result.active)
        assert len(result.active) == 4, by_message
        # transitive input mutation through a helper
        assert any(
            "positive_mutates" in m and "`buf` transitively" in m
            for m in by_message
        )
        # direct input mutation
        assert any(
            "positive_direct" in m and "`buf` in place" in m
            for m in by_message
        )
        # global accumulator two modules away
        assert any("_CALLS" in m for m in by_message)
        # unseeded RNG in a third module
        assert any("default_rng" in m for m in by_message)

    def test_finding_sites(self):
        result = _lint("r8pkg", "R8")
        paths = {f.path for f in result.active}
        assert paths == {
            "r8pkg/tasks.py",
            "r8pkg/helpers.py",
            "r8pkg/rng.py",
        }

    def test_ref_via_module_constant(self):
        # positive_global is only referenced through PRICE_FN, so the
        # _CALLS finding proves the constant-indirection resolution.
        result = _lint("r8pkg", "R8")
        (calls,) = [f for f in result.active if "_CALLS" in f.message]
        assert "r8pkg.tasks:positive_global" in calls.message

    def test_pure_task_is_clean(self):
        result = _lint("r8pkg", "R8")
        assert not any("negative_pure" in f.message for f in result.active)
        assert not any("draw_seeded" in f.message for f in result.active)


# ----------------------------------------------------------------------
class TestR9CacheKeyCompleteness:
    def test_unhashed_field_flagged(self):
        result = _lint("r9_cases.py", "R9")
        precision = [f for f in result.active if "precision" in f.message]
        assert len(precision) == 1
        assert "task_key" in precision[0].message

    def test_missing_key_function_flagged(self):
        result = _lint("r9_cases.py", "R9")
        missing = [
            f for f in result.active if "no reachable key function" in f.message
        ]
        assert len(missing) == 1
        assert "TuningPlan" in missing[0].message

    def test_hashed_exempt_and_suppressed_quiet(self):
        result = _lint("r9_cases.py", "R9")
        assert len(result.active) == 2  # precision + TuningPlan only
        sup = [f for f in result.findings if f.suppressed]
        assert len(sup) == 1 and "note" in sup[0].message


# ----------------------------------------------------------------------
class TestR10SchemaDrift:
    def test_event_keys_map_drift(self):
        result = _lint("r10_cases.py", "R10")
        assert any(
            "`why`" in f.message and "_EVENT_KEYS" in f.message
            for f in result.active
        )
        assert any(
            "unknown event kind `lost`" in f.message for f in result.active
        )

    def test_ctor_drift(self):
        result = _lint("r10_cases.py", "R10")
        assert any("'jitter'" in f.message for f in result.active)
        assert any("'reason'" in f.message for f in result.active)

    def test_exporter_read_drift(self):
        result = _lint("r10_cases.py", "R10")
        assert any("`cause`" in f.message for f in result.active)
        assert any(
            "events_of('missing')" in f.message for f in result.active
        )

    def test_negatives_and_suppression(self):
        result = _lint("r10_cases.py", "R10")
        assert len(result.active) == 6
        owners = _owners(result.active, "r10_cases.py")
        assert "emit_good" not in owners
        assert "emit_positional" not in owners
        assert "emit_star" not in owners
        sup = [f for f in result.findings if f.suppressed]
        assert _owners(sup, "r10_cases.py") == ["suppressed"]

    def test_payload_constructors_audited_like_events(self):
        """`*Payload` wire dataclasses (the serve admin surface) are in
        R10's scope exactly like `*Event` ones."""
        result = _lint("r10_payloads.py", "R10")
        assert len(result.active) == 3
        assert any("'extra'" in f.message for f in result.active)
        assert any("'width'" in f.message for f in result.active)
        assert any(
            "`lanes`" in f.message and "_EVENT_KEYS" in f.message
            for f in result.active
        )
        owners = _owners(result.active, "r10_payloads.py")
        assert "build_good" not in owners
        assert "build_star" not in owners


# ----------------------------------------------------------------------
class TestSeededBugs:
    """The acceptance bugs: each deliberate regression of the real
    sources must fail lint with its expected rule."""

    def _real(self, *parts):
        root = os.path.dirname(os.path.abspath(repro.__file__))
        with open(os.path.join(root, *parts), "r", encoding="utf-8") as fh:
            return fh.read()

    def test_blocking_call_in_serve_coroutine(self, tmp_path):
        src = self._real("serve", "server.py")
        tree = ast.parse(src)
        fn = next(
            n for n in ast.walk(tree) if isinstance(n, ast.AsyncFunctionDef)
        )
        first = fn.body[0]
        indent = " " * first.col_offset
        lines = src.splitlines(True)
        lines.insert(
            first.lineno - 1, f"{indent}import time\n{indent}time.sleep(0.5)\n"
        )
        bug = tmp_path / "server.py"
        bug.write_text("".join(lines))
        result = lint_paths([str(bug)], rules=["R6"], use_model_cache=False)
        assert any("time.sleep" in f.message for f in result.active)

    def test_pricingtask_field_omitted_from_key(self, tmp_path):
        src = self._real("parallel", "tasks.py")
        anchor = "cacheable: bool = True"
        assert anchor in src  # the real dataclass still has the field
        bug_src = src.replace(
            anchor, anchor + "\n    precision: str = \"fp64\"", 1
        )
        bug = tmp_path / "tasks.py"
        bug.write_text(bug_src)
        result = lint_paths([str(bug)], rules=["R9"], use_model_cache=False)
        assert any(
            f.rule == "R9" and "precision" in f.message for f in result.active
        )

    def test_event_field_renamed_only_in_events_py(self, tmp_path):
        src = self._real("obs", "events.py")
        anchor = "iteration: int"
        assert anchor in src
        bug = tmp_path / "events.py"
        bug.write_text(src.replace(anchor, "step: int", 1))
        result = lint_paths([str(bug)], rules=["R10"], use_model_cache=False)
        assert any(
            f.rule == "R10" and "`iteration`" in f.message
            for f in result.active
        )

    def test_unmutated_sources_pass(self):
        root = os.path.dirname(os.path.abspath(repro.__file__))
        result = lint_paths(
            [
                os.path.join(root, "serve", "server.py"),
                os.path.join(root, "serve", "admin.py"),
                os.path.join(root, "parallel", "tasks.py"),
                os.path.join(root, "obs", "events.py"),
            ],
            rules=["R6", "R9", "R10"],
            use_model_cache=False,
        )
        assert result.active == []


# ----------------------------------------------------------------------
class TestModelCache:
    def test_warm_run_is_twice_as_fast(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        target = os.path.dirname(os.path.abspath(repro.__file__))

        t0 = time.perf_counter()
        cold = lint_paths([target])
        cold_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        warm = lint_paths([target])
        warm_s = time.perf_counter() - t0

        assert cold.model_stats["parsed"] == cold.files_checked
        assert warm.model_stats["cache_hits"] == warm.files_checked
        assert warm.model_stats["parsed"] == 0
        assert warm.counts() == cold.counts()
        assert warm_s < cold_s / 2, (warm_s, cold_s)

    def test_content_change_invalidates_one_file(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "a.py").write_text("A = 'a'\n")
        (pkg / "b.py").write_text("B = 'b'\n")
        lint_paths([str(pkg)])
        (pkg / "b.py").write_text("B = 'changed'\nassert B\n")
        result = lint_paths([str(pkg)])
        assert result.model_stats["cache_hits"] == 1
        assert result.model_stats["parsed"] == 1
        assert [f.rule for f in result.active] == ["R1"]

    def test_corrupt_cache_is_ignored(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cache = ModelCache()
        os.makedirs(cache.root, exist_ok=True)
        with open(cache.path, "w", encoding="utf-8") as fh:
            fh.write("{not json")
        result = lint_paths([_fixture("r1_cases.py")])
        assert result.parse_errors == []
        assert result.model_stats["parsed"] == 1
        # and the run rewrote a valid cache behind itself
        with open(cache.path, "r", encoding="utf-8") as fh:
            assert json.load(fh)["engine"]

    def test_stale_engine_version_rejected(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        lint_paths([_fixture("r1_cases.py")])
        cache = ModelCache()
        with open(cache.path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        payload["engine"] = "0.1"
        with open(cache.path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh)
        result = lint_paths([_fixture("r1_cases.py")])
        assert result.model_stats["cache_hits"] == 0
        assert result.model_stats["parsed"] == 1
