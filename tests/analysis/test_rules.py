"""Per-rule fixture tests: each rule fires on its positive cases, stays
silent on the negatives, and honours inline/file suppression."""

import os

import pytest

from repro.analysis import lint_paths
from repro.analysis.linter import iter_python_files, package_relative
from repro.analysis.rules import ALL_RULES, RULES_BY_ID, ModuleContext

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


def _fixture(name):
    return os.path.join(FIXTURES, name)


def _lint(name, rule):
    return lint_paths([_fixture(name)], rules=[rule])


def _functions_of(findings, name):
    """Map each finding to the enclosing fixture function (by line)."""
    with open(_fixture(name), "r", encoding="utf-8") as fh:
        lines = fh.read().splitlines()
    starts = [
        (i + 1, line.split("(")[0].replace("def ", "").strip())
        for i, line in enumerate(lines)
        if line.startswith("def ")
    ]
    out = []
    for f in findings:
        owner = None
        for lineno, fn in starts:
            if lineno <= f.line:
                owner = fn
        out.append(owner)
    return out


class TestRuleCatalogue:
    def test_ten_rules_registered(self):
        assert [r.rule_id for r in ALL_RULES] == [
            "R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8", "R9", "R10",
        ]
        assert set(RULES_BY_ID) == set(r.rule_id for r in ALL_RULES)
        for rule in ALL_RULES:
            assert rule.rule_name
            assert rule.description
        # the split drives orchestration: local rules run per file (and
        # cache per file), program rules run once over the model.
        local = [r for r in ALL_RULES if not getattr(r, "program_rule", False)]
        program = [r for r in ALL_RULES if getattr(r, "program_rule", False)]
        assert [r.rule_id for r in local] == ["R1", "R2", "R3", "R4", "R5"]
        assert [r.rule_id for r in program] == ["R6", "R7", "R8", "R9", "R10"]

    def test_unknown_rule_id_rejected(self):
        with pytest.raises(ValueError, match="unknown rule"):
            lint_paths([_fixture("r1_cases.py")], rules=["R99"])


class TestR1BareAssert:
    def test_positive_and_suppressed(self):
        result = _lint("r1_cases.py", "R1")
        assert _functions_of(result.active, "r1_cases.py") == ["positive"]
        sup = [f for f in result.findings if f.suppressed]
        assert _functions_of(sup, "r1_cases.py") == ["suppressed"]
        assert "python -O" in result.active[0].message

    def test_negative_silent(self):
        result = _lint("r1_cases.py", "R1")
        assert "negative" not in _functions_of(result.findings, "r1_cases.py")


class TestR2UnitMixing:
    def test_positive_and_suppressed(self):
        result = _lint("r2_cases.py", "R2")
        assert _functions_of(result.active, "r2_cases.py") == [
            "positive_add",
            "positive_compare",
        ]
        assert "cycles" in result.active[0].message
        assert "joules" in result.active[0].message
        sup = [f for f in result.findings if f.suppressed]
        assert _functions_of(sup, "r2_cases.py") == ["suppressed"]

    def test_negatives_silent(self):
        owners = _functions_of(_lint("r2_cases.py", "R2").findings, "r2_cases.py")
        assert not any(o.startswith("negative") for o in owners)


class TestR3MagicConstant:
    def test_positive_and_suppressed(self):
        result = _lint("r3_cases.py", "R3")
        assert _functions_of(result.active, "r3_cases.py") == [
            "positive_clock",
            "positive_period",
        ]
        sup = [f for f in result.findings if f.suppressed]
        assert _functions_of(sup, "r3_cases.py") == ["suppressed"]

    def test_named_module_constant_exempt(self):
        result = _lint("r3_cases.py", "R3")
        assert all(f.line > 3 for f in result.findings)  # CLOCK_HZ = 1e9

    def test_hardware_modules_exempt(self):
        # The same source reported under a hardware/ path is in scope for
        # *defining* these constants, so R3 stays silent there.
        with open(_fixture("r3_cases.py"), "r", encoding="utf-8") as fh:
            ctx = ModuleContext.parse("repro/hardware/params.py", fh.read())
        assert RULES_BY_ID["R3"].check(ctx) == []


class TestR4Nondeterminism:
    def test_positive_and_suppressed(self):
        result = _lint("r4_cases.py", "R4")
        assert _functions_of(result.active, "r4_cases.py") == [
            "positive_legacy_rng",
            "positive_unseeded_generator",
            "positive_stdlib_rng",
            "positive_wallclock",
        ]
        sup = [f for f in result.findings if f.suppressed]
        assert _functions_of(sup, "r4_cases.py") == ["suppressed"]

    def test_seeded_generator_silent(self):
        owners = _functions_of(_lint("r4_cases.py", "R4").findings, "r4_cases.py")
        assert "negative_seeded_generator" not in owners

    def test_perf_module_may_read_wallclock(self):
        with open(_fixture("r4_cases.py"), "r", encoding="utf-8") as fh:
            ctx = ModuleContext.parse("repro/perf.py", fh.read())
        messages = [f.message for f in RULES_BY_ID["R4"].check(ctx)]
        assert not any("wall clock" in m for m in messages)
        assert any("legacy global RNG" in m for m in messages)  # RNG still applies


class TestR5KernelPurity:
    def test_positive_and_suppressed(self):
        result = _lint("r5_cases.py", "R5")
        owners = _functions_of(result.active, "r5_cases.py")
        assert owners == ["inner_product", "inner_product", "outer_product"]
        hows = [f.message for f in result.active]
        assert any("subscript store" in m for m in hows)
        assert any("augmented assignment" in m for m in hows)
        assert any(".sort() call" in m for m in hows)
        sup = [f for f in result.findings if f.suppressed]
        assert _functions_of(sup, "r5_cases.py") == ["inner_product_batch"]

    def test_unregistered_function_and_copies_silent(self):
        owners = _functions_of(_lint("r5_cases.py", "R5").findings, "r5_cases.py")
        assert "helper" not in owners


class TestSuppression:
    def test_skip_file_silences_everything(self):
        result = lint_paths([_fixture("skipped.py")])
        assert result.findings == []
        assert result.files_checked == 1

    def test_bare_ignore_silences_all_rules(self, tmp_path):
        src = tmp_path / "mod.py"
        src.write_text("assert 1e9  # repro-lint: ignore\n")
        result = lint_paths([str(src)])
        assert result.active == []
        assert {f.rule for f in result.findings} == {"R1", "R3"}
        assert all(f.suppressed for f in result.findings)

    def test_comment_line_above_suppresses(self, tmp_path):
        src = tmp_path / "mod.py"
        src.write_text("# repro-lint: ignore[R1]\nassert True\n")
        result = lint_paths([str(src)])
        assert result.active == []
        assert result.findings[0].suppressed

    def test_wrong_rule_id_does_not_suppress(self, tmp_path):
        src = tmp_path / "mod.py"
        src.write_text("assert True  # repro-lint: ignore[R3]\n")
        result = lint_paths([str(src)])
        assert [f.rule for f in result.active] == ["R1"]


class TestDiscovery:
    def test_iter_python_files_sorted_and_filtered(self, tmp_path):
        (tmp_path / "b.py").write_text("")
        (tmp_path / "a.py").write_text("")
        (tmp_path / "notes.txt").write_text("")
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "__pycache__" / "a.cpython-311.py").write_text("")
        files = [os.path.basename(p) for p in iter_python_files([str(tmp_path)])]
        assert files == ["a.py", "b.py"]

    def test_package_relative_walks_to_package_root(self):
        import repro.spmv.inner as inner

        assert package_relative(inner.__file__) == "repro/spmv/inner.py"

    def test_non_package_file_keeps_basename(self):
        assert package_relative(_fixture("r1_cases.py")) == "r1_cases.py"

    def test_parse_error_reported_not_raised(self, tmp_path):
        src = tmp_path / "broken.py"
        src.write_text("def f(:\n")
        result = lint_paths([str(src)])
        assert len(result.parse_errors) == 1
        assert not result.ok
