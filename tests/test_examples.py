"""Smoke tests: the shipped examples must actually run.

Each example is executed in a subprocess (its own interpreter, like a
user would) with a generous timeout; the slower sweep examples are
exercised by the benchmark suite instead.
"""

import os
import subprocess
import sys

import pytest

pytestmark = pytest.mark.slow  # one subprocess per example: `make test` skips

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def run_example(name, *args, timeout=240):
    return subprocess.run(
        [sys.executable, os.path.join(_ROOT, "examples", name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
        cwd=_ROOT,
    )


class TestExamples:
    def test_quickstart(self):
        proc = run_example("quickstart.py")
        assert proc.returncode == 0, proc.stderr
        assert "BFS from vertex" in proc.stdout
        assert "software (IP<->OP) switches" in proc.stdout

    def test_custom_semiring(self):
        proc = run_example("custom_semiring.py")
        assert proc.returncode == 0, proc.stderr
        assert "verified against Dijkstra-style reference: True" in proc.stdout

    def test_sssp_case_study_small(self):
        proc = run_example("sssp_case_study.py", "256")
        assert proc.returncode == 0, proc.stderr
        assert "FIG9" in proc.stdout
        assert "net speedup" in proc.stdout

    def test_extension_algorithms(self):
        proc = run_example("extension_algorithms.py")
        assert proc.returncode == 0, proc.stderr
        assert "verified vs Ligra" in proc.stdout
