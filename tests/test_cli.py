"""CLI tests."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture(autouse=True)
def tmp_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["fig4"])
        assert args.scale == 8
        assert args.geometry == "16x16"

    def test_out_flag(self):
        args = build_parser().parse_args(["fig4", "--out", "x.csv"])
        assert args.out == "x.csv"


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out and "table3" in out

    def test_unknown_artifact(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown artifact" in capsys.readouterr().err

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        assert "TABLE2" in capsys.readouterr().out

    def test_table3_with_csv(self, capsys, tmp_path):
        out = tmp_path / "t3.csv"
        assert main(["table3", "--scale", "512", "--out", str(out)]) == 0
        assert out.exists()
        assert "pokec" in out.read_text()

    def test_fig9_small(self, capsys):
        assert main(["fig9", "--scale", "256"]) == 0
        assert "FIG9" in capsys.readouterr().out


class TestJsonFlag:
    def test_json_round_trip(self, capsys, tmp_path):
        from repro.experiments.store import load_result

        out = tmp_path / "t2.json"
        assert main(["table2", "--json", str(out)]) == 0
        assert load_result(str(out)).experiment == "table2"

    def test_svg_without_recipe_is_graceful(self, capsys, tmp_path):
        out = tmp_path / "t2.svg"
        assert main(["table2", "--svg", str(out)]) == 0
        err = capsys.readouterr().err
        assert "no chart" in err
        assert not out.exists()
