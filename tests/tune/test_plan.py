"""TuningPlan and plan-cache tests."""

import json
import os

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hardware import Geometry
from repro.tune import (
    PlanCache,
    TuningPlan,
    candidate_grid,
    ordering_permutation,
    plan_cache_enabled,
    plan_key,
)
from repro.tune.candidates import grid_signature
from repro.workloads import chung_lu


@pytest.fixture(scope="module")
def matrix():
    return chung_lu(500, 4000, seed=3)


@pytest.fixture
def plan():
    return TuningPlan(
        ordering="degree",
        vblock_width=512,
        storage="blocked",
        geometry="2x4",
        matrix_key="abc123",
        metrics={"hit_rate": 0.9, "wall_s": 1.0, "cycles": 100.0},
        baseline={"hit_rate": 0.8, "wall_s": 2.0, "cycles": 110.0},
        candidates=30,
        version="1.0.0",
    )


class TestTuningPlan:
    def test_round_trip(self, plan):
        assert TuningPlan.from_dict(plan.to_dict()) == plan

    def test_json_round_trip(self, plan):
        blob = json.dumps(plan.to_dict())
        assert TuningPlan.from_dict(json.loads(blob)) == plan

    def test_derived_metrics(self, plan):
        assert plan.wall_speedup == pytest.approx(2.0)
        assert plan.hit_rate_gain == pytest.approx(0.1)
        assert not plan.is_identity
        assert plan.label == "degree/w512/blocked"

    def test_identity_plan(self):
        p = TuningPlan("identity", 512, "coo", "2x4")
        assert p.is_identity
        assert p.wall_speedup is None

    def test_from_dict_rejects_unknown_fields(self, plan):
        data = plan.to_dict()
        data["bogus"] = 1
        with pytest.raises(ConfigurationError):
            TuningPlan.from_dict(data)

    def test_from_dict_rejects_missing_fields(self):
        with pytest.raises(ConfigurationError):
            TuningPlan.from_dict({"ordering": "degree"})

    def test_apply_identity_returns_input(self, matrix):
        p = TuningPlan("identity", 512, "coo", "2x4")
        out, perm = p.apply(matrix)
        assert out is matrix and perm is None

    def test_apply_regenerates_exact_permutation(self, matrix):
        p = TuningPlan("rcm", 512, "coo", "2x4")
        out, perm = p.apply(matrix)
        np.testing.assert_array_equal(
            perm, ordering_permutation(matrix, "rcm")
        )
        assert out.nnz == matrix.nnz
        # schedule-stable: rows sorted
        assert bool(np.all(np.diff(out.rows) >= 0))


class TestPlanKey:
    def test_deterministic(self, matrix):
        grid = grid_signature(candidate_grid(Geometry(2, 4)))
        assert plan_key(matrix, "2x4", grid) == plan_key(matrix, "2x4", grid)

    def test_sensitive_to_matrix_content(self, matrix):
        grid = grid_signature(candidate_grid(Geometry(2, 4)))
        other = chung_lu(500, 4000, seed=4)
        assert plan_key(matrix, "2x4", grid) != plan_key(other, "2x4", grid)

    def test_sensitive_to_geometry_and_grid(self, matrix):
        grid = grid_signature(candidate_grid(Geometry(2, 4)))
        assert plan_key(matrix, "2x4", grid) != plan_key(matrix, "4x4", grid)
        assert plan_key(matrix, "2x4", grid) != plan_key(
            matrix, "2x4", grid[:-1]
        )


class TestPlanCache:
    def test_round_trip(self, tmp_path, plan):
        cache = PlanCache(root=str(tmp_path))
        assert cache.get("k1") is None
        cache.put("k1", plan)
        assert cache.get("k1") == plan

    def test_entries_and_clear(self, tmp_path, plan):
        cache = PlanCache(root=str(tmp_path))
        cache.put("k1", plan)
        cache.put("k2", plan)
        assert [k for k, _ in cache.entries()] == ["k1", "k2"]
        assert cache.clear() == 2
        assert list(cache.entries()) == []

    def test_corrupt_entry_dropped(self, tmp_path, plan):
        cache = PlanCache(root=str(tmp_path))
        cache.put("k1", plan)
        with open(cache._path("k1"), "w") as f:
            f.write("{not json")
        assert cache.get("k1") is None
        assert not os.path.exists(cache._path("k1"))

    def test_atomic_write_leaves_no_tmp(self, tmp_path, plan):
        cache = PlanCache(root=str(tmp_path))
        cache.put("k1", plan)
        leftovers = [
            name
            for name in os.listdir(cache.dir)
            if not name.endswith(".json")
        ]
        assert leftovers == []

    def test_env_switch(self, monkeypatch):
        monkeypatch.delenv("REPRO_TUNE_CACHE", raising=False)
        assert plan_cache_enabled()
        monkeypatch.setenv("REPRO_TUNE_CACHE", "0")
        assert not plan_cache_enabled()
