"""Autotuner tests: grid, probes, selection, caching, runtime wiring."""

import numpy as np
import pytest

from repro.core import CoSparseRuntime
from repro.errors import ConfigurationError
from repro.hardware import DEFAULT_PARAMS, Geometry
from repro.perf import counters
from repro.tune import (
    ORDERINGS,
    STORAGES,
    TuningPlan,
    autotune,
    candidate_grid,
    default_widths,
)
from repro.tune.probe import (
    WALL_PROBE_SEED,
    cache_probe,
    stream_order,
    wall_probe,
)
from repro.workloads import chung_lu
from repro.workloads.reorder import ORDERING_METHODS


@pytest.fixture(scope="module")
def matrix():
    return chung_lu(600, 6000, seed=11)


@pytest.fixture
def tune_cache(tmp_path, monkeypatch):
    """All caches (workload, pricing, plan) in a fresh temp dir."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_PRICING_CACHE", "1")
    monkeypatch.setenv("REPRO_TUNE_CACHE", "1")
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    counters.reset()
    yield tmp_path
    counters.reset()


#: Restricted grid keeping autotune tests inside the fast subset:
#: baseline + degree ordering x one width x two storages.
_SMALL = dict(orderings=("degree",), widths=(256,), storages=("coo", "blocked"))


class TestCandidateGrid:
    def test_baseline_first(self):
        geo = Geometry(2, 4)
        grid = candidate_grid(geo)
        first = grid[0]
        assert first.is_identity
        assert first.storage == "coo"
        assert first.vblock_width == default_widths(geo, DEFAULT_PARAMS)[0]

    def test_full_grid_size(self):
        geo = Geometry(2, 4)
        widths = default_widths(geo, DEFAULT_PARAMS)
        # baseline + orderings x widths x storages minus the baseline dup
        expected = len(ORDERINGS) * len(widths) * len(STORAGES)
        assert len(candidate_grid(geo)) == expected

    def test_orderings_cover_identity_plus_methods(self):
        assert ORDERINGS == ("identity",) + ORDERING_METHODS

    def test_validation(self):
        geo = Geometry(2, 4)
        with pytest.raises(ConfigurationError):
            candidate_grid(geo, orderings=("hilbert",))
        with pytest.raises(ConfigurationError):
            candidate_grid(geo, widths=(0,))
        with pytest.raises(ConfigurationError):
            candidate_grid(geo, storages=("csr",))

    def test_labels_unique(self):
        grid = candidate_grid(Geometry(2, 4))
        labels = [c.label for c in grid]
        assert len(labels) == len(set(labels))


class TestProbes:
    def test_stream_order_coo_hybrid_stored(self):
        cols = np.array([5, 1, 9, 0])
        assert stream_order(cols, "coo", 4) is None
        assert stream_order(cols, "hybrid", 4) is None

    def test_stream_order_blocked_vblock_major(self):
        cols = np.array([5, 1, 9, 0, 4])
        order = stream_order(cols, "blocked", 4)
        blocks = (cols[order] // 4).tolist()
        assert blocks == sorted(blocks)
        # stable: within a block, original relative order survives
        assert cols[order].tolist() == [1, 0, 5, 4, 9]

    def test_stream_order_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            stream_order(np.array([0]), "csr", 4)

    def test_cache_probe_perfect_locality(self):
        """A stream that reuses one tiny segment hits after warmup."""
        cols = np.zeros(1000, dtype=np.int64)
        arrays = {
            "coo_rows": np.zeros(1000, dtype=np.int64),
            "coo_cols": cols,
            "coo_vals": np.ones(1000),
        }
        res = cache_probe(
            {"geometry": "2x4", "vblock_width": 64, "storage": "coo"},
            arrays,
        )
        assert res["accesses"] == 1000
        assert res["hit_rate"] > 0.99

    def test_cache_probe_hybrid_pins_first_vblock(self):
        """Gathers below the vblock width never touch the cache."""
        cols = np.arange(100, dtype=np.int64)
        arrays = {
            "coo_rows": np.zeros(100, dtype=np.int64),
            "coo_cols": cols,
            "coo_vals": np.ones(100),
        }
        res = cache_probe(
            {"geometry": "2x4", "vblock_width": 40, "storage": "hybrid"},
            arrays,
        )
        assert res["pinned_hits"] == 40

    def test_wall_probe_times_and_reports_passes(self, matrix):
        arrays = {
            "coo_rows": matrix.rows,
            "coo_cols": matrix.cols,
            "coo_vals": matrix.vals,
        }
        res = wall_probe(
            {
                "vblock_width": 128,
                "storage": "blocked",
                "shape": [matrix.n_rows, matrix.n_cols],
                "passes": 2,
            },
            arrays,
        )
        assert res["wall_s"] > 0.0
        assert res["passes"] == 2

    def test_wall_probe_seed_is_fixed(self):
        assert WALL_PROBE_SEED == 20210607


class TestAutotune:
    def test_returns_valid_plan(self, matrix, tune_cache):
        plan = autotune(matrix, "2x4", jobs=1, passes=1, **_SMALL)
        assert plan.ordering in ORDERINGS
        assert plan.storage in STORAGES
        assert plan.vblock_width > 0
        assert plan.geometry == "2x4"
        assert plan.candidates == 3  # baseline + degree x 256 x 2 storages
        assert set(plan.baseline) == {"hit_rate", "wall_s", "cycles"}
        assert set(plan.metrics) == {"hit_rate", "wall_s", "cycles"}

    def test_never_loses_to_baseline(self, matrix, tune_cache):
        """Selection is dominance-gated: the winner's modelled hit rate
        and wall clock are never worse than identity's."""
        plan = autotune(matrix, "2x4", jobs=1, passes=1, **_SMALL)
        if not plan.is_identity:
            assert plan.metrics["hit_rate"] >= plan.baseline["hit_rate"] - 1e-9
            assert plan.metrics["wall_s"] <= plan.baseline["wall_s"]

    def test_accepts_graph_and_operand(self, matrix, tune_cache):
        """Graph / operand / raw COO of the same matrix unwrap to the
        same plan key (the second and third calls are plan-cache hits)."""
        from repro.graphs import Graph

        g = Graph(matrix)
        a = autotune(g, "2x4", jobs=1, passes=1, **_SMALL)
        b = autotune(g.operand, "2x4", jobs=1, passes=1, **_SMALL)
        c = autotune(g.operand.coo, "2x4", jobs=1, passes=1, **_SMALL)
        assert a.to_dict() == b.to_dict() == c.to_dict()
        assert counters.tuning_plan_cache_hits == 2

    def test_rejects_non_matrix(self, tune_cache):
        with pytest.raises(ConfigurationError):
            autotune([[1, 0], [0, 1]], "2x4")

    def test_warm_retune_hits_plan_cache(self, matrix, tune_cache):
        """Acceptance: a warm second tuning run executes ZERO pricing
        kernels — the plan cache short-circuits the whole evaluation."""
        cold = autotune(matrix, "2x4", jobs=1, passes=1, **_SMALL)
        assert counters.tuning_plan_cache_hits == 0
        assert counters.tuning_plan_cache_misses == 1
        assert counters.tuning_candidates == 3
        assert counters.pricing_tasks > 0

        counters.reset()
        warm = autotune(matrix, "2x4", jobs=1, passes=1, **_SMALL)
        assert counters.tuning_plan_cache_hits == 1
        assert counters.tuning_candidates == 0
        assert counters.pricing_tasks == 0
        assert counters.kernel_executions == 0
        assert warm.to_dict() == cold.to_dict()

    def test_plan_cache_disabled_still_hits_pricing_cache(
        self, matrix, tune_cache
    ):
        """Without the plan cache, the warm run re-evaluates but every
        probe is a pricing-cache hit: still zero kernel executions."""
        autotune(
            matrix, "2x4", jobs=1, passes=1, use_plan_cache=False, **_SMALL
        )
        counters.reset()
        autotune(
            matrix, "2x4", jobs=1, passes=1, use_plan_cache=False, **_SMALL
        )
        assert counters.tuning_plan_cache_hits == 0
        assert counters.pricing_tasks > 0
        assert counters.pricing_cache_hits == counters.pricing_tasks
        assert counters.kernel_executions == 0

    def test_geometry_changes_plan_key(self, matrix, tune_cache):
        autotune(matrix, "2x4", jobs=1, passes=1, **_SMALL)
        counters.reset()
        autotune(matrix, "4x4", jobs=1, passes=1, **_SMALL)
        assert counters.tuning_plan_cache_hits == 0
        assert counters.tuning_plan_cache_misses == 1


class TestRuntimeWiring:
    def test_identity_plan_leaves_runtime_unpermuted(self, matrix):
        plan = TuningPlan("identity", 512, "coo", "2x4")
        rt = CoSparseRuntime(matrix, geometry="2x4", plan=plan)
        assert rt.plan is plan
        assert rt.vertex_perm is None
        assert rt.vertex_inverse is None

    def test_plan_permutes_operand(self, matrix):
        counters.reset()
        plan = TuningPlan("degree", 512, "coo", "2x4")
        rt = CoSparseRuntime(matrix, geometry="2x4", plan=plan)
        assert counters.tuning_plans_applied == 1
        perm, inv = rt.vertex_perm, rt.vertex_inverse
        assert sorted(perm.tolist()) == list(range(matrix.n_rows))
        np.testing.assert_array_equal(inv[perm], np.arange(matrix.n_rows))
        # operand really is the permuted matrix
        assert rt.operand.coo.nnz == matrix.nnz
        assert sorted(rt.operand.coo.row_counts()) == sorted(
            matrix.row_counts()
        )

    def test_auto_tune_constructs_and_applies_plan(self, matrix, tune_cache):
        rt = CoSparseRuntime(matrix, geometry="2x4", auto_tune=True)
        assert rt.plan is not None
        assert counters.tuning_runs == 1
        assert counters.tuning_plans_applied == 1

    def test_explicit_plan_skips_autotune(self, matrix, tune_cache):
        plan = TuningPlan("identity", 512, "coo", "2x4")
        CoSparseRuntime(matrix, geometry="2x4", plan=plan, auto_tune=True)
        assert counters.tuning_runs == 0

    def test_default_runtime_untouched(self, matrix):
        rt = CoSparseRuntime(matrix, geometry="2x4")
        assert rt.plan is None
        assert rt.vertex_perm is None


class TestVertexMap:
    def test_identity_runtime(self, matrix):
        from repro.graphs.common import VertexMap

        rt = CoSparseRuntime(matrix, geometry="2x4")
        vm = VertexMap(rt)
        assert vm.identity
        assert vm.vertex(7) == 7
        x = np.arange(5.0)
        assert vm.to_execution(x) is not None
        np.testing.assert_array_equal(vm.to_original(x), x)

    def test_round_trip(self, matrix):
        from repro.graphs.common import VertexMap

        plan = TuningPlan("rcm", 512, "coo", "2x4")
        rt = CoSparseRuntime(matrix, geometry="2x4", plan=plan)
        vm = VertexMap(rt)
        assert not vm.identity
        orig = np.random.default_rng(3).random(matrix.n_rows)
        np.testing.assert_array_equal(
            vm.to_original(vm.to_execution(orig)), orig
        )
        # vertex() agrees with to_execution on a one-hot vector
        v = 13
        onehot = np.zeros(matrix.n_rows)
        onehot[v] = 1.0
        assert vm.to_execution(onehot)[vm.vertex(v)] == 1.0


class TestTuneEnvSwitch:
    def test_tune_requested_parsing(self, monkeypatch):
        from repro.graphs.common import tune_requested

        monkeypatch.delenv("REPRO_TUNE", raising=False)
        assert not tune_requested()
        for falsey in ("", "0", "false", "off", "no"):
            monkeypatch.setenv("REPRO_TUNE", falsey)
            assert not tune_requested()
        monkeypatch.setenv("REPRO_TUNE", "1")
        assert tune_requested()
