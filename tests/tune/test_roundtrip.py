"""Tuned drivers must be bit-identical to untuned in original ids.

The whole point of the schedule-stable permutation plus the VertexMap
boundary discipline is that a tuning plan is *invisible* to callers:
every driver, run under any non-identity ordering, must return exactly
the values an untuned run returns — ``np.array_equal``, not allclose.
"""

import numpy as np
import pytest

from repro.graphs import (
    Graph,
    bfs,
    bfs_multi,
    collaborative_filtering,
    pagerank,
    sssp,
    sssp_multi,
)
from repro.graphs.bc import betweenness_centrality
from repro.graphs.cc import connected_components
from repro.tune import TuningPlan
from repro.workloads import chung_lu

GEO = "1x2"


@pytest.fixture(scope="module")
def graph():
    return Graph(chung_lu(400, 4000, seed=29, weighted=True), name="rt")


@pytest.fixture(
    scope="module", params=["degree", "bfs", "rcm", "block"]
)
def plan(request):
    return TuningPlan(request.param, 256, "coo", GEO)


def identical(a, b):
    return np.array_equal(np.asarray(a), np.asarray(b), equal_nan=True)


class TestBitIdentity:
    def test_bfs(self, graph, plan):
        base = bfs(graph, 3, geometry=GEO).values
        tuned = bfs(graph, 3, geometry=GEO, plan=plan).values
        assert identical(base, tuned)

    def test_sssp(self, graph, plan):
        base = sssp(graph, 3, geometry=GEO).values
        tuned = sssp(graph, 3, geometry=GEO, plan=plan).values
        assert identical(base, tuned)

    def test_pagerank(self, graph, plan):
        kw = dict(geometry=GEO, max_iters=5, tol=0.0)
        base = pagerank(graph, **kw).values
        tuned = pagerank(graph, plan=plan, **kw).values
        assert identical(base, tuned)

    def test_connected_components(self, graph, plan):
        base = connected_components(graph, geometry=GEO).values
        tuned = connected_components(graph, geometry=GEO, plan=plan).values
        assert identical(base, tuned)

    def test_collaborative_filtering(self, graph, plan):
        kw = dict(geometry=GEO, k=4, iterations=2, seed=5)
        base = collaborative_filtering(graph, **kw).values
        tuned = collaborative_filtering(graph, plan=plan, **kw).values
        assert identical(base, tuned)

    def test_bfs_multi(self, graph, plan):
        srcs = [0, 7, 31]
        base = bfs_multi(graph, srcs, geometry=GEO).values
        tuned = bfs_multi(graph, srcs, geometry=GEO, plan=plan).values
        assert identical(base, tuned)

    def test_sssp_multi(self, graph, plan):
        srcs = [0, 7, 31]
        base = sssp_multi(graph, srcs, geometry=GEO).values
        tuned = sssp_multi(graph, srcs, geometry=GEO, plan=plan).values
        assert identical(base, tuned)

    def test_betweenness_centrality(self, graph, plan):
        kw = dict(geometry=GEO, sources=[2, 9])
        base = betweenness_centrality(graph, **kw).values
        tuned = betweenness_centrality(graph, plan=plan, **kw).values
        assert identical(base, tuned)
