"""Exception-hierarchy tests: one catchable root, precise subclasses."""

import pytest

from repro import errors


class TestHierarchy:
    def test_all_derive_from_root(self):
        for exc in (
            errors.FormatError,
            errors.ShapeError,
            errors.ConfigurationError,
            errors.SimulationError,
            errors.WorkloadError,
            errors.AlgorithmError,
            errors.ServeError,
        ):
            assert issubclass(exc, errors.ReproError)

    def test_shape_is_a_format_error(self):
        assert issubclass(errors.ShapeError, errors.FormatError)

    def test_root_catches_library_raises(self):
        from repro.formats import COOMatrix

        with pytest.raises(errors.ReproError):
            COOMatrix(2, 2, [5], [0], [1.0])

    def test_configuration_errors_catchable(self):
        from repro.hardware import Geometry

        with pytest.raises(errors.ReproError):
            Geometry.parse("not-a-geometry")
