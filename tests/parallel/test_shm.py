"""Shared-memory arena: publish/attach round trips and lifecycle."""

import numpy as np
import pytest

from repro.parallel.shm import ShmArena, attach


class TestArena:
    def test_publish_attach_round_trip(self):
        arr = np.linspace(0.0, 1.0, 4096)
        with ShmArena() as arena:
            ref = arena.publish(arr)
            view = attach(ref)
            assert np.array_equal(view, arr)
            assert not view.flags.writeable

    def test_publish_memoised_per_buffer(self):
        arr = np.arange(1024, dtype=np.int64)
        with ShmArena() as arena:
            assert arena.publish(arr) is arena.publish(arr)

    def test_distinct_arrays_get_distinct_segments(self):
        with ShmArena() as arena:
            a = arena.publish(np.zeros(128))
            b = arena.publish(np.ones(128))
            assert a.segment != b.segment

    def test_ref_is_picklable_metadata(self):
        import pickle

        with ShmArena() as arena:
            ref = arena.publish(np.zeros((4, 8), dtype=np.float32))
            clone = pickle.loads(pickle.dumps(ref))
            assert clone == ref
            assert clone.shape == (4, 8)
            assert clone.dtype == "float32"

    def test_close_unlinks_segments(self):
        arena = ShmArena()
        ref = arena.publish(np.zeros(256))
        arena.close()
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=ref.segment)

    def test_close_is_idempotent(self):
        arena = ShmArena()
        arena.publish(np.zeros(16))
        arena.close()
        arena.close()
