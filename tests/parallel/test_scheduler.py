"""SweepScheduler: determinism, caching, fallback, job resolution.

The pool tests run real ``ProcessPoolExecutor`` workers; grids are kept
tiny (one matrix, one geometry) so they stay inside the fast subset
even on a single-core machine.
"""

import pytest

from repro.experiments import run_fig4
from repro.obs import Tracer, override
from repro.parallel import PricingTask, SweepScheduler, resolve_jobs
from repro.perf import counters

#: The small Fig. 4 slice every scheduler-integration test prices.
_GRID = dict(scale=64, geometries=("4x8",), matrices=(0,))


@pytest.fixture
def cold_cache(tmp_path, monkeypatch):
    """Workload cache in a temp dir, pricing cache off."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_PRICING_CACHE", "0")
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    return tmp_path


@pytest.fixture
def warm_cache(tmp_path, monkeypatch):
    """Workload + pricing caches both live in a temp dir."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_PRICING_CACHE", "1")
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    return tmp_path


class TestResolveJobs:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_jobs(3) == 3

    def test_env_beats_cpu_count(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "2")
        assert resolve_jobs() == 2

    def test_floor_is_one(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(0) == 1
        assert resolve_jobs(-4) == 1

    def test_bad_env_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ValueError):
            resolve_jobs()

    def test_nonpositive_env_raises(self, monkeypatch):
        # REPRO_JOBS=0 is user misconfiguration, not a request for 1.
        for value in ("0", "-3"):
            monkeypatch.setenv("REPRO_JOBS", value)
            with pytest.raises(ValueError, match="positive"):
                resolve_jobs()


class TestBitIdentity:
    def test_pool_matches_serial(self, cold_cache):
        serial = run_fig4(jobs=1, **_GRID)
        pooled = run_fig4(jobs=4, **_GRID)
        assert pooled.rows == serial.rows  # bit-identical, not approx

    def test_env_jobs_matches_explicit(self, cold_cache, monkeypatch):
        serial = run_fig4(jobs=1, **_GRID)
        monkeypatch.setenv("REPRO_JOBS", "2")
        pooled = run_fig4(**_GRID)
        assert pooled.rows == serial.rows


class TestPricingCacheRoundTrip:
    def test_second_run_executes_no_kernels(self, warm_cache):
        first = run_fig4(jobs=1, **_GRID)
        counters.reset()
        second = run_fig4(jobs=1, **_GRID)
        assert second.rows == first.rows
        assert counters.kernel_executions == 0
        assert counters.kernel_profile_only == 0
        assert counters.pricing_tasks > 0
        assert counters.pricing_cache_hits == counters.pricing_tasks
        assert counters.pricing_cache_misses == 0

    def test_cache_survives_worker_count_change(self, warm_cache):
        first = run_fig4(jobs=2, **_GRID)
        counters.reset()
        second = run_fig4(jobs=1, **_GRID)
        assert second.rows == first.rows
        assert counters.pricing_cache_hits == counters.pricing_tasks


def _poison_tasks(mode, n=3):
    return [
        PricingTask(
            "repro.parallel.work:poison",
            {"mode": mode, "i": i},
            cacheable=False,
        )
        for i in range(n)
    ]


class TestFallback:
    def test_dead_worker_falls_back_to_serial(self):
        counters.reset()
        sched = SweepScheduler(jobs=2, use_cache=False, label="poisoned")
        results = sched.map(_poison_tasks("exit"))
        # The serial rerun completes every task despite the dead pool.
        assert [r["ok"] for r in results] == [1, 1, 1]
        assert counters.pricing_fallbacks == 1
        assert sched.last_stats["fallback_tasks"] > 0

    def test_fallback_emits_warning_event(self):
        with override(Tracer(label="t")) as tracer:
            SweepScheduler(jobs=2, use_cache=False).map(_poison_tasks("exit"))
        warnings = tracer.event_records("warning")
        assert warnings and "serially" in warnings[0]["message"]

    def test_timeout_falls_back(self):
        counters.reset()
        sched = SweepScheduler(
            jobs=2, timeout_s=0.5, use_cache=False, label="hung"
        )
        results = sched.map(_poison_tasks("hang", n=2))
        assert all(r["ok"] == 1 for r in results)
        assert counters.pricing_fallbacks == 1

    def test_straggler_keeps_completed_results(self):
        # One hung worker must not discard (and serially re-run) the
        # tasks that other workers already finished: only the straggler
        # itself lands in the fallback count.
        counters.reset()
        tasks = [
            PricingTask(
                "repro.parallel.work:poison",
                {"mode": "hang", "i": 0},
                cacheable=False,
            )
        ] + _poison_tasks("ok", n=3)
        sched = SweepScheduler(
            jobs=2, timeout_s=2.0, use_cache=False, label="straggler"
        )
        results = sched.map(tasks)
        assert [r["ok"] for r in results] == [1, 1, 1, 1]
        assert results[0]["mode"] == "hang"  # serial fallback ran it
        assert sched.last_stats["fallback_tasks"] == 1
        assert counters.pricing_fallbacks == 1

    def test_task_exception_propagates(self):
        sched = SweepScheduler(jobs=1, use_cache=False)
        with pytest.raises(RuntimeError, match="poisoned"):
            sched.map(_poison_tasks("raise"))

    def test_task_exception_propagates_from_pool(self):
        sched = SweepScheduler(jobs=2, use_cache=False)
        with pytest.raises(RuntimeError, match="poisoned"):
            sched.map(_poison_tasks("raise"))


class TestSchedulerUnits:
    def test_empty_map(self):
        assert SweepScheduler(jobs=2, use_cache=False).map([]) == []

    def test_single_task_stays_in_process(self, monkeypatch):
        # One pending task never pays pool spin-up, whatever ``jobs``.
        import repro.parallel.scheduler as sched_mod

        def boom(*a, **k):  # pragma: no cover - must not run
            raise AssertionError("pool should not be used")

        monkeypatch.setattr(sched_mod.SweepScheduler, "_run_pool", boom)
        (res,) = sched_mod.SweepScheduler(jobs=4, use_cache=False).map(
            _poison_tasks("exit", n=1)
        )
        assert res["ok"] == 1

    def test_serial_jobs_never_import_pool(self, monkeypatch):
        import repro.parallel.scheduler as sched_mod

        monkeypatch.setattr(
            sched_mod.SweepScheduler,
            "_run_pool",
            lambda *a, **k: (_ for _ in ()).throw(AssertionError("pool")),
        )
        sched = sched_mod.SweepScheduler(jobs=1, use_cache=False)
        results = sched.map(_poison_tasks("exit"))
        assert [r["ok"] for r in results] == [1, 1, 1]

    def test_stats_account_for_every_task(self, tmp_path):
        cache_root = str(tmp_path)
        tasks = [
            PricingTask(
                "repro.parallel.work:poison", {"mode": "exit", "i": i}
            )
            for i in range(4)
        ]
        from repro.parallel import PricingCache

        sched = SweepScheduler(jobs=1, use_cache=True, label="stats")
        sched.cache = PricingCache(root=cache_root)
        first = sched.map(tasks)
        assert sched.last_stats == {
            "dispatched": 4, "cache_hits": 0, "fallback_tasks": 0,
        }
        second = sched.map(tasks)
        assert second == first
        assert sched.last_stats == {
            "dispatched": 0, "cache_hits": 4, "fallback_tasks": 0,
        }


class TestSpanIntegration:
    def test_sweep_span_records_stats(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_PRICING_CACHE", "0")
        with override(Tracer(label="t")) as tracer:
            run_fig4(jobs=1, **_GRID)
        spans = [
            s for s in tracer.span_records() if s["name"] == "parallel.sweep"
        ]
        assert spans
        attrs = spans[0]["attrs"]
        assert attrs["label"] == "fig4"
        assert attrs["jobs"] == 1
        assert attrs["dispatched"] == attrs["tasks"]
