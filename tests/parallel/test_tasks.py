"""Task descriptors and the content-addressed cache key."""

import numpy as np
import pytest

from repro.parallel import PricingTask, array_digest, task_key


@pytest.fixture
def task():
    return PricingTask(
        fn="repro.parallel.work:price_config",
        payload={"algorithm": "ip", "mode": "SC", "n": 64},
        arrays={"rows": np.arange(8, dtype=np.int64)},
    )


class TestArrayDigest:
    def test_stable_across_copies(self):
        a = np.linspace(0.0, 1.0, 17)
        assert array_digest(a) == array_digest(a.copy())

    def test_sensitive_to_values_dtype_and_shape(self):
        a = np.zeros(6)
        assert array_digest(a) != array_digest(np.ones(6))
        assert array_digest(a) != array_digest(np.zeros(6, dtype=np.float32))
        assert array_digest(a) != array_digest(np.zeros((2, 3)))


class TestTaskKey:
    def test_deterministic(self, task):
        again = PricingTask(
            task.fn, dict(task.payload), {k: v.copy() for k, v in task.arrays.items()}
        )
        assert task_key(task) == task_key(again)

    def test_payload_order_irrelevant(self, task):
        reordered = PricingTask(
            task.fn, {"n": 64, "mode": "SC", "algorithm": "ip"}, task.arrays
        )
        assert task_key(task) == task_key(reordered)

    def test_payload_change_changes_key(self, task):
        other = PricingTask(task.fn, {**task.payload, "n": 65}, task.arrays)
        assert task_key(task) != task_key(other)

    def test_array_change_changes_key(self, task):
        other = PricingTask(
            task.fn, task.payload, {"rows": np.arange(1, 9, dtype=np.int64)}
        )
        assert task_key(task) != task_key(other)

    def test_fn_change_changes_key(self, task):
        other = PricingTask("repro.parallel.work:poison", task.payload, task.arrays)
        assert task_key(task) != task_key(other)

    def test_precomputed_digests_match(self, task):
        digests = {k: array_digest(v) for k, v in task.arrays.items()}
        assert task_key(task, digests) == task_key(task)
