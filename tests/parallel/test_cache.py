"""Persistent pricing cache: round trips, corruption, switches."""

import json
import os

from repro.parallel import PricingCache, pricing_cache_enabled


class TestSwitch:
    def test_default_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_PRICING_CACHE", raising=False)
        assert pricing_cache_enabled()

    def test_falsey_values_disable(self, monkeypatch):
        for value in ("0", "false", "off", "no", ""):
            monkeypatch.setenv("REPRO_PRICING_CACHE", value)
            assert not pricing_cache_enabled()

    def test_truthy_values_enable(self, monkeypatch):
        monkeypatch.setenv("REPRO_PRICING_CACHE", "1")
        assert pricing_cache_enabled()


class TestPricingCache:
    def test_round_trip(self, tmp_path):
        cache = PricingCache(root=str(tmp_path))
        result = {"cycles": 123.456, "energy_j": 7.89e-6, "clock_hz": 1e9}
        cache.put("abc", "mod:fn", result)
        assert cache.get("abc") == result

    def test_float_repr_survives_bit_exact(self, tmp_path):
        cache = PricingCache(root=str(tmp_path))
        value = 0.1 + 0.2  # a float with no short decimal form
        cache.put("k", "mod:fn", {"cycles": value})
        assert cache.get("k")["cycles"] == value

    def test_miss_returns_none(self, tmp_path):
        assert PricingCache(root=str(tmp_path)).get("nope") is None

    def test_corrupt_entry_is_dropped(self, tmp_path):
        cache = PricingCache(root=str(tmp_path))
        cache.put("k", "mod:fn", {"cycles": 1.0})
        path = os.path.join(cache.dir, "k.json")
        with open(path, "w") as f:
            f.write("{not json")
        assert cache.get("k") is None
        assert not os.path.exists(path)  # deleted, not retried forever

    def test_entry_records_fn(self, tmp_path):
        cache = PricingCache(root=str(tmp_path))
        cache.put("k", "repro.parallel.work:price_config", {"cycles": 1.0})
        with open(os.path.join(cache.dir, "k.json")) as f:
            entry = json.load(f)
        assert entry["fn"] == "repro.parallel.work:price_config"

    def test_default_root_is_cache_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cache = PricingCache()
        assert cache.dir == os.path.join(str(tmp_path), "pricing")

    def test_transient_oserror_keeps_entry(self, tmp_path, monkeypatch):
        # A failed *open* (EACCES, EMFILE, EIO) says nothing about the
        # entry's content: it must be a plain miss, never a delete.
        import builtins

        cache = PricingCache(root=str(tmp_path))
        cache.put("k", "mod:fn", {"cycles": 42.0})
        path = os.path.join(cache.dir, "k.json")
        real_open = builtins.open

        def flaky_open(file, *args, **kwargs):
            if file == path:
                raise PermissionError(13, "transient EACCES", file)
            return real_open(file, *args, **kwargs)

        monkeypatch.setattr(builtins, "open", flaky_open)
        assert cache.get("k") is None  # miss while unreadable...
        monkeypatch.setattr(builtins, "open", real_open)
        assert os.path.exists(path)  # ...but the entry survived
        assert cache.get("k") == {"cycles": 42.0}

    def test_missing_result_key_is_dropped(self, tmp_path):
        cache = PricingCache(root=str(tmp_path))
        path = os.path.join(cache.dir, "k.json")
        os.makedirs(cache.dir, exist_ok=True)
        with open(path, "w") as f:
            json.dump({"fn": "mod:fn"}, f)  # parseable but schema-broken
        assert cache.get("k") is None
        assert not os.path.exists(path)

    def test_unwritable_dir_degrades_silently(self, tmp_path):
        # A plain file where the cache directory should be makes every
        # write path fail with OSError (chmod tricks don't stop root).
        root = tmp_path / "ro"
        root.mkdir()
        cache = PricingCache(root=str(root))
        with open(cache.dir, "w") as f:
            f.write("not a directory")
        cache.put("k", "mod:fn", {"cycles": 1.0})  # must not raise
        assert cache.get("k") is None
