"""Persistent pricing cache: round trips, corruption, switches."""

import json
import os

from repro.parallel import PricingCache, pricing_cache_enabled


class TestSwitch:
    def test_default_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_PRICING_CACHE", raising=False)
        assert pricing_cache_enabled()

    def test_falsey_values_disable(self, monkeypatch):
        for value in ("0", "false", "off", "no", ""):
            monkeypatch.setenv("REPRO_PRICING_CACHE", value)
            assert not pricing_cache_enabled()

    def test_truthy_values_enable(self, monkeypatch):
        monkeypatch.setenv("REPRO_PRICING_CACHE", "1")
        assert pricing_cache_enabled()


class TestPricingCache:
    def test_round_trip(self, tmp_path):
        cache = PricingCache(root=str(tmp_path))
        result = {"cycles": 123.456, "energy_j": 7.89e-6, "clock_hz": 1e9}
        cache.put("abc", "mod:fn", result)
        assert cache.get("abc") == result

    def test_float_repr_survives_bit_exact(self, tmp_path):
        cache = PricingCache(root=str(tmp_path))
        value = 0.1 + 0.2  # a float with no short decimal form
        cache.put("k", "mod:fn", {"cycles": value})
        assert cache.get("k")["cycles"] == value

    def test_miss_returns_none(self, tmp_path):
        assert PricingCache(root=str(tmp_path)).get("nope") is None

    def test_corrupt_entry_is_dropped(self, tmp_path):
        cache = PricingCache(root=str(tmp_path))
        cache.put("k", "mod:fn", {"cycles": 1.0})
        path = os.path.join(cache.dir, "k.json")
        with open(path, "w") as f:
            f.write("{not json")
        assert cache.get("k") is None
        assert not os.path.exists(path)  # deleted, not retried forever

    def test_entry_records_fn(self, tmp_path):
        cache = PricingCache(root=str(tmp_path))
        cache.put("k", "repro.parallel.work:price_config", {"cycles": 1.0})
        with open(os.path.join(cache.dir, "k.json")) as f:
            entry = json.load(f)
        assert entry["fn"] == "repro.parallel.work:price_config"

    def test_default_root_is_cache_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cache = PricingCache()
        assert cache.dir == os.path.join(str(tmp_path), "pricing")

    def test_unwritable_dir_degrades_silently(self, tmp_path):
        # A plain file where the cache directory should be makes every
        # write path fail with OSError (chmod tricks don't stop root).
        root = tmp_path / "ro"
        root.mkdir()
        cache = PricingCache(root=str(root))
        with open(cache.dir, "w") as f:
            f.write("not a directory")
        cache.put("k", "mod:fn", {"cycles": 1.0})  # must not raise
        assert cache.get("k") is None
