#!/usr/bin/env python
"""Explore the IP/OP crossover (Fig. 4) and calibrate the decision tree.

Sweeps the frontier density on a uniform matrix, times the inner product
(SC) against the outer product (PC) on several system geometries,
locates the measured crossover vector density (CVD), and compares it
with the heuristic the decision tree predicts — the Section III-C
methodology in miniature.

Run:  python examples/spmv_density_sweep.py [N] [nnz]
"""

import sys

from repro.core import DecisionTree, MatrixInfo, calibrated_thresholds
from repro.core.calibration import find_crossover_density, sweep_op_vs_ip
from repro.hardware import Geometry
from repro.workloads import uniform_random


def main():
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 32_768
    nnz = int(sys.argv[2]) if len(sys.argv) > 2 else 500_000
    print(f"generating a uniform {n:,} x {n:,} matrix with ~{nnz:,} nnz...")
    matrix = uniform_random(n, nnz=nnz, seed=1)
    info = MatrixInfo.of(matrix)
    densities = (0.0025, 0.005, 0.01, 0.02, 0.04, 0.08)

    print(f"\n{'system':>8}  {'measured CVD':>13}  {'tree CVD':>9}   OP-vs-IP speedups")
    for name in ("4x8", "4x16", "4x32", "8x16"):
        geometry = Geometry.parse(name)
        points = sweep_op_vs_ip(matrix, geometry, densities)
        measured = find_crossover_density(points)
        predicted = DecisionTree(geometry).crossover_density(info)
        series = "  ".join(
            f"{p.vector_density:.3g}:{p.speedup:4.2f}" for p in points
        )
        measured_s = f"{measured:.4f}" if measured else "none"
        print(f"{name:>8}  {measured_s:>13}  {predicted:9.4f}   {series}")

    print("\ncalibrating the decision tree against the measured sweep (4x16)...")
    thresholds = calibrated_thresholds(matrix, Geometry.parse("4x16"))
    print(f"  cvd_at_8_pes: default 0.0200 -> calibrated {thresholds.cvd_at_8_pes:.4f}")
    print(
        "  (pass `thresholds=...` to CoSparseRuntime to use the"
        " calibrated tree)"
    )


if __name__ == "__main__":
    main()
