#!/usr/bin/env python
"""The paper's Fig. 9 case study: SSSP on (a stand-in for) pokec.

Reproduces the per-iteration table — frontier density, execution time of
all five priced configurations normalised to IP/SC, and the chosen
software/hardware configuration — plus the net speedup of co-
reconfiguration over the static IP/SC baseline (the paper reports 1.51x
on full-size pokec, and up to 2.0x across algorithms and graphs).

Run:  python examples/sssp_case_study.py [scale]

``scale`` shrinks the pokec stand-in (default 64 -> ~25k vertices;
16 matches the benchmark suite, 1 is full size and takes a while).
"""

import sys

from repro.experiments import run_fig9


def main():
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    print(f"running SSSP on pokec@1/{scale} over a 16x16 system...")
    result = run_fig9(scale=scale, geometry_name="16x16")
    print()
    print(result.table())
    print()
    print("Reading the table:")
    print(" * iterations with <1% frontier density pick the outer product")
    print("   (only frontier columns are merged);")
    print(" * the swollen middle iterations pick the inner product, with")
    print("   SCS once the frontier is dense enough that output traffic")
    print("   would evict vector lines from the shared cache;")
    print(" * each hardware switch costs <= 10 cycles, so per-iteration")
    print("   reconfiguration is essentially free.")


if __name__ == "__main__":
    main()
