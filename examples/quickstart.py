#!/usr/bin/env python
"""Quickstart: run a reconfiguring SpMV-based BFS on CoSPARSE.

Builds a small power-law graph, runs BFS through the CoSPARSE runtime on
a modelled 4x16 Transmuter system, and shows how the framework picked a
software algorithm (inner/outer product) and a hardware memory
configuration (SC/SCS/PC/PS) for every iteration as the frontier swelled
and shrank.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import CoSparseRuntime
from repro.graphs import Graph, bfs
from repro.workloads import chung_lu


def main():
    # 1. A 20k-vertex social-network-like graph (power-law degrees).
    adjacency = chung_lu(20_000, 200_000, seed=1)
    graph = Graph(adjacency, name="quickstart")
    print(f"graph: {graph}")

    # 2. A runtime over the graph's operand: the adjacency transposed and
    #    resident in both kernel formats (COO for IP, CSC for OP).
    runtime = CoSparseRuntime(graph.operand, geometry="4x16", policy="tree")

    # 3. BFS from the highest-degree vertex.
    source = int(np.argmax(graph.out_degrees()))
    run = bfs(graph, source, runtime=runtime)

    reached = int(np.isfinite(run.values).sum())
    print(
        f"\nBFS from vertex {source}: reached {reached:,} vertices "
        f"in {run.iterations} iterations"
    )
    print(f"modelled time   : {run.time_s * 1e6:,.1f} us at 1 GHz")
    energy_j = run.total_energy_j  # None when no energy model priced the run
    if energy_j is not None:
        print(f"modelled energy : {energy_j * 1e6:,.2f} uJ")
    else:
        print("modelled energy : n/a (no energy model attached)")

    # 4. The per-iteration reconfiguration decisions.
    print("\niter  frontier-density  config   cycles")
    for record in run.log:
        print(
            f"{record.iteration:4d}  {record.vector_density:16.4%}  "
            f"{record.config_label:7s}  {record.report.cycles:12,.0f}"
        )
    print(
        f"\n{run.log.sw_switches} software (IP<->OP) switches, "
        f"{run.log.hw_switches} hardware mode switches"
    )


if __name__ == "__main__":
    main()
