#!/usr/bin/env python
"""Author a new algorithm with a custom Matrix_Op / Vector_Op pair.

The paper's programmability pitch (Section III-D): "End users only need
to define the key computations to realize a graph algorithm."  This
example defines **widest path** (maximum-bottleneck path: maximise, over
paths, the minimum edge capacity) as a semiring —

    Matrix_Op:  max( min(V[src], Sp[src,dst]), V[dst] )
    Vector_Op:  n/a

— and runs it through the same reconfiguring runtime as BFS/SSSP/PR/CF,
verifying the result against a brute-force reference.

Run:  python examples/custom_semiring.py
"""

import numpy as np

from repro.core import CoSparseRuntime
from repro.graphs import Graph
from repro.graphs.frontier import frontier_from_mask, single_vertex_frontier
from repro.spmv import Semiring
from repro.workloads import chung_lu


def widest_path_semiring() -> Semiring:
    """max-min semiring: bottleneck capacity with carry on V[dst]."""

    def combine(a, v_src, v_dst, src_idx, dst_idx):
        return np.minimum(v_src, a)

    return Semiring(
        name="WidestPath",
        combine=combine,
        reduce_op=np.maximum,
        identity=0.0,
        carry_output=True,  # max(..., V[dst])
        combine_flops=1,
        absent=0.0,  # inactive vertices cannot improve anything
    )


def widest_paths(graph: Graph, source: int, geometry="4x8"):
    """Frontier-driven bottleneck relaxation using the CoSPARSE runtime."""
    rt = CoSparseRuntime(graph.operand, geometry, policy="tree")
    n = graph.n_vertices
    semiring = widest_path_semiring()
    width = np.zeros(n)
    width[source] = np.inf
    frontier = single_vertex_frontier(n, source, value=np.inf)
    while frontier.nnz:
        result = rt.spmv(frontier, semiring, current=width)
        improved = result.values > width
        width = result.values
        frontier = frontier_from_mask(improved, width)
    return width, rt.log


def reference_widest(graph: Graph, source: int):
    """Dijkstra-style reference (priority by widest bottleneck)."""
    import heapq

    n = graph.n_vertices
    adj = [[] for _ in range(n)]
    for u, v, w in zip(graph.adjacency.rows, graph.adjacency.cols, graph.adjacency.vals):
        adj[int(u)].append((int(v), float(w)))
    best = np.zeros(n)
    best[source] = np.inf
    heap = [(-np.inf, source)]
    while heap:
        neg, u = heapq.heappop(heap)
        if -neg < best[u]:
            continue
        for v, w in adj[u]:
            cand = min(best[u], w)
            if cand > best[v]:
                best[v] = cand
                heapq.heappush(heap, (-cand, v))
    return best


def main():
    graph = Graph(chung_lu(5_000, 60_000, seed=3), name="widest")
    source = int(np.argmax(graph.out_degrees()))
    width, log = widest_paths(graph, source)
    ref = reference_widest(graph, source)
    ok = np.allclose(np.nan_to_num(width, posinf=-1), np.nan_to_num(ref, posinf=-1))
    print(f"widest-path from vertex {source} on {graph}")
    print(f"verified against Dijkstra-style reference: {ok}")
    reachable = int((width > 0).sum()) - 1
    print(f"{reachable:,} reachable vertices; total {log.total_cycles:,.0f} cycles")
    print(f"configurations used: {list(dict.fromkeys(log.config_sequence()))}")
    print("\nThat is the whole algorithm: one Semiring dataclass and a")
    print("frontier loop — scheduling, partitioning and reconfiguration")
    print("came from the framework.")
    if not ok:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
