#!/usr/bin/env python
"""Run the four graph algorithms against the Ligra baseline (mini Fig. 10).

For each algorithm x graph pair this runs CoSPARSE (16x16 model) and the
functional Ligra engine (Xeon model), verifies the two produce identical
results, and reports speedup and energy-efficiency gain.

Run:  python examples/graph_suite_vs_ligra.py [scale]
"""

import sys

from repro.experiments import run_fig10


def main():
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    workloads = {
        "pr": ("vsp", "twitter", "pokec"),
        "cf": ("vsp", "twitter"),
        "bfs": ("vsp", "twitter", "pokec"),
        "sssp": ("vsp", "twitter", "pokec"),
    }
    print(f"Table III stand-ins at 1/{scale} scale; results are verified")
    print("to match between CoSPARSE and Ligra before timing is compared.\n")
    result = run_fig10(scale=scale, workloads=workloads, check=True)
    print(result.table())
    print()
    print("Shape to expect (paper Fig. 10): CoSPARSE wins most pairs (up")
    print("to ~3.5x), traversals on the biggest graph are closest calls,")
    print("and the energy-efficiency gain is in the hundreds because the")
    print("array draws ~0.3 W against the Xeon's ~580 W.")


if __name__ == "__main__":
    main()
