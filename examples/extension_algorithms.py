#!/usr/bin/env python
"""Connected components and betweenness centrality — the paper's "etc.".

Both extension algorithms ride the same reconfiguring SpMV runtime as
BFS/SSSP/PR/CF: CC's active set starts at 100 % and shrinks (IP -> OP as
labels converge), BC's forward phase swells and shrinks per source.
Results are verified against the independent Ligra engine inline.

Run:  python examples/extension_algorithms.py
"""

import numpy as np

from repro.baselines import LigraEngine
from repro.graphs import Graph, betweenness_centrality, connected_components
from repro.workloads import chung_lu


def main():
    graph = Graph(chung_lu(15_000, 120_000, seed=9), name="extensions")
    engine = LigraEngine(graph)
    print(f"graph: {graph}\n")

    # ---- connected components -------------------------------------
    cc = connected_components(graph, geometry="4x16")
    li = engine.connected_components()
    assert np.allclose(cc.values, li.values), "CC mismatch vs Ligra"
    n_comp = len(np.unique(cc.values))
    giant = np.bincount(cc.values.astype(int)).max()
    print(
        f"components: {n_comp:,} (giant = {giant:,} vertices), "
        f"{cc.iterations} iterations, verified vs Ligra"
    )
    print(f"  config sequence: {list(dict.fromkeys(cc.log.config_sequence()))}")
    print(f"  speedup over Ligra/Xeon: {li.time_s / cc.time_s:.2f}x\n")

    # ---- betweenness centrality ------------------------------------
    hubs = np.argsort(graph.out_degrees())[-4:]
    bc = betweenness_centrality(graph, sources=hubs.tolist(), geometry="4x16")
    li = engine.betweenness_centrality(sources=hubs.tolist())
    assert np.allclose(bc.values, li.values), "BC mismatch vs Ligra"
    top = np.argsort(bc.values)[-5:][::-1]
    print(f"betweenness (from {len(hubs)} hub sources), verified vs Ligra:")
    for v in top:
        print(f"  vertex {v:6d}: bc = {bc.values[v]:10.1f}")
    print(f"  forward-phase frontier peak: {bc.frontier_trace.peak_density:.1%}")
    print(f"  speedup over Ligra/Xeon: {li.time_s / bc.time_s:.2f}x")


if __name__ == "__main__":
    main()
