#!/usr/bin/env python
"""Design-space exploration beyond the paper's headline systems.

Sweeps the Transmuter geometry (tiles x PEs/tile) for a fixed SpMV
workload and reports how each configuration's best achievable time and
energy scale — including where the outer product stops scaling because
of the per-tile LCP serialisation (the mechanism behind the paper's
observation that the crossover density falls as PEs per tile grow).

Run:  python examples/design_space_exploration.py
"""

from repro.core import DecisionTree, MatrixInfo
from repro.experiments.common import run_config
from repro.formats import CSCMatrix
from repro.hardware import Geometry, HWMode, TransmuterSystem
from repro.workloads import random_frontier, uniform_random

GEOMETRIES = ("2x8", "4x8", "4x16", "8x16", "16x16", "16x32")
DENSITIES = (0.002, 0.02, 0.5)


def main():
    matrix = uniform_random(65_536, nnz=1_000_000, seed=1)
    csc = CSCMatrix.from_coo(matrix)
    info = MatrixInfo.of(matrix)
    print(
        f"workload: uniform {matrix.n_rows:,}^2 matrix, {matrix.nnz:,} nnz; "
        "best of the four configurations per cell\n"
    )
    header = f"{'system':>7} {'PEs':>5} {'power(W)':>9}"
    for d in DENSITIES:
        header += f"  | d_v={d:<6} t(us)  E(uJ)  cfg"
    print(header)
    for name in GEOMETRIES:
        geometry = Geometry.parse(name)
        system = TransmuterSystem(geometry)
        tree = DecisionTree(geometry)
        line = f"{name:>7} {geometry.n_pes:>5} {system.static_power_w:9.3f}"
        for d in DENSITIES:
            frontier = random_frontier(matrix.n_cols, d, seed=7)
            best = None
            for algo, mode in (
                ("ip", HWMode.SC),
                ("ip", HWMode.SCS),
                ("op", HWMode.PC),
                ("op", HWMode.PS),
            ):
                rep = run_config(matrix, csc, frontier, algo, mode, geometry, system)
                label = f"{algo.upper()}/{mode.label}"
                if best is None or rep.cycles < best[0].cycles:
                    best = (rep, label)
            rep, label = best
            picked = tree.decide(info, frontier.density)
            mark = "" if str(picked) == label else "*"
            line += (
                f"  | {rep.cycles / 1e3:11.1f} {rep.energy_j * 1e6:6.1f}"
                f"  {label}{mark}"
            )
        print(line)
    print(
        "\n(* = the heuristic decision tree picked a different config than"
        " the measured optimum for that cell)"
    )
    print(
        "Note how OP's time flattens as PEs per tile grow while IP keeps"
        " scaling — the LCP's serial merge/write-back is the Amdahl term"
        " that moves the crossover density."
    )


if __name__ == "__main__":
    main()
